"""The certified-bounds subsystem: sandwich soundness, certificates,
engine threading, and cache-key byte-stability.

The core soundness matrix runs every plain generator family at small
sizes and asserts the full chain ``primal <= exact ν <= dual`` with
every certificate re-proven by :func:`repro.bounds.verify_certificate`;
the adversarial half does the same on the paper's lower-bound
constructions, whose optimum is known by certificate.  The
byte-stability half pins the content addresses and record bytes of the
pre-bounds optimum modes against fixtures recorded *before* this
subsystem existed (``tests/data/v2_optimum_keys.json``).
"""

from __future__ import annotations

import hashlib
import json
import random
from fractions import Fraction
from pathlib import Path

import pytest

from repro.baselines.lp_rounding import LPRoundingEDS
from repro.bounds import (
    DUAL_BOUND_EDGE_LIMIT,
    BoundResult,
    CoverCertificate,
    MatchingCertificate,
    SandwichCertificate,
    doubling_phases,
    dual_bound,
    exact_bound,
    fractional_vertex_cover,
    maximum_matching_edges,
    nu_sandwich,
    primal_bound,
    primal_matching,
    solve_covering_lp,
    verify_certificate,
)
from repro.bounds.fractional import line_graph_covering_instance
from repro.eds.bounds import (
    eds_lower_bound,
    eds_lower_bound_from_nu,
    maximum_matching_size,
)
from repro.eds.exact import minimum_eds_size
from repro.eds.properties import is_edge_dominating_set
from repro.engine.cache import cache_key
from repro.engine.executor import execute_unit
from repro.engine.records import ResultRecord, ResultStore
from repro.engine.spec import GraphSpec, JobSpec, canonical_json
from repro.exceptions import CertificateError
from repro.lowerbounds.even import build_even_lower_bound
from repro.lowerbounds.odd import build_odd_lower_bound
from repro.obs.spans import recording

from test_family_matrix import BOUNDED_FAMILIES, REGULAR_FAMILIES

ALL_FAMILIES = REGULAR_FAMILIES + BOUNDED_FAMILIES

FIXTURE = Path(__file__).parent / "data" / "v2_optimum_keys.json"


# ---------------------------------------------------------------------------
# Sandwich soundness on the full family matrix
# ---------------------------------------------------------------------------


class TestSandwichSoundnessMatrix:
    @pytest.mark.parametrize("name,make,d", ALL_FAMILIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_primal_nu_dual_chain(self, name, make, d, seed):
        g = make()
        nu = maximum_matching_size(g)
        primal = primal_bound(g, seed=seed)
        dual = dual_bound(g, seed=seed)
        sandwich = nu_sandwich(g, seed=seed)
        assert primal.lower <= nu <= dual.upper, name
        assert sandwich.lower <= nu <= sandwich.upper, name
        assert verify_certificate(g, primal)
        assert verify_certificate(g, dual)
        assert verify_certificate(g, sandwich)

    @pytest.mark.parametrize("name,make,d", ALL_FAMILIES)
    def test_interval_contains_exact_eds_optimum(self, name, make, d):
        g = make()
        optimum = minimum_eds_size(g)
        sandwich = nu_sandwich(g, seed=0)
        lower = eds_lower_bound_from_nu(
            sandwich.lower, g.num_edges, g.max_degree
        )
        assert lower <= optimum <= sandwich.lower, name
        # The sandwich's EDS lower bound can never beat the one derived
        # from the exact ν (monotonicity).
        assert lower <= eds_lower_bound(g), name

    @pytest.mark.parametrize("name,make,d", ALL_FAMILIES)
    def test_primal_matching_is_maximal_matching(self, name, make, d):
        g = make()
        matching = primal_matching(g, seed=0)
        assert is_edge_dominating_set(g, matching), name
        matched = {v for e in matching for v in (e.u, e.v)}
        assert len(matched) == 2 * len(matching), name

    @pytest.mark.parametrize("name,make,d", ALL_FAMILIES)
    def test_exact_engine_matches_blossom(self, name, make, d):
        g = make()
        result = exact_bound(g)
        assert result.exact
        assert result.lower == result.upper == maximum_matching_size(g)
        assert verify_certificate(g, result)
        assert len(maximum_matching_edges(g)) == result.lower


class TestAdversarialInstances:
    """The paper's lower-bound constructions: optimum known exactly."""

    @pytest.mark.parametrize(
        "build,d",
        [(build_even_lower_bound, 2), (build_even_lower_bound, 4),
         (build_odd_lower_bound, 3), (build_odd_lower_bound, 5)],
    )
    def test_sandwich_brackets_certified_optimum(self, build, d):
        instance = build(d)
        g = instance.graph
        nu = maximum_matching_size(g)
        sandwich = nu_sandwich(g, seed=0)
        assert sandwich.lower <= nu <= sandwich.upper
        assert verify_certificate(g, sandwich)
        lower = eds_lower_bound_from_nu(
            sandwich.lower, g.num_edges, g.max_degree
        )
        assert lower <= instance.optimum_size <= sandwich.lower


class TestDeterminism:
    def test_same_seed_same_certificate(self):
        g = REGULAR_FAMILIES[4][1]()  # circulant-8
        a, b = nu_sandwich(g, seed=7), nu_sandwich(g, seed=7)
        assert a == b

    def test_seed_changes_are_sound_not_byte_stable(self):
        g = BOUNDED_FAMILIES[1][1]()  # grid-3x4
        nu = maximum_matching_size(g)
        brackets = {
            (s.lower, s.upper)
            for s in (nu_sandwich(g, seed=seed) for seed in range(6))
        }
        for lower, upper in brackets:
            assert lower <= nu <= upper


# ---------------------------------------------------------------------------
# Certificate verification rejects corruption
# ---------------------------------------------------------------------------


class TestVerifyRejectsCorruption:
    def _sandwich(self):
        g = REGULAR_FAMILIES[7][1]()  # petersen
        return g, nu_sandwich(g, seed=0)

    def test_cover_value_lowered(self):
        g, s = self._sandwich()
        cert = s.certificate
        values = dict(cert.cover.values)
        victim = next(iter(values))
        values[victim] = values[victim] - Fraction(1, 4)
        broken = BoundResult(
            lower=s.lower, upper=s.upper,
            certificate=SandwichCertificate(
                matching=cert.matching,
                cover=CoverCertificate(values=values),
            ),
            exact=s.exact,
        )
        with pytest.raises(CertificateError, match="infeasible"):
            verify_certificate(g, broken)

    def test_cover_value_negative(self):
        g, _ = self._sandwich()
        node = g.nodes[0]
        cover = CoverCertificate(
            values={n: Fraction(1) for n in g.nodes} | {node: Fraction(-1)}
        )
        result = BoundResult(0, cover.bound, cover, exact=False)
        with pytest.raises(CertificateError, match="negative"):
            verify_certificate(g, result)

    def test_cover_value_float_rejected(self):
        g, _ = self._sandwich()
        cover = CoverCertificate(values={n: 0.5 for n in g.nodes})
        result = BoundResult(0, g.num_nodes // 2, cover, exact=False)
        with pytest.raises(CertificateError, match="not exact"):
            verify_certificate(g, result)

    def test_matching_overlap_rejected(self):
        g, _ = self._sandwich()
        edges = [e for e in g.edges if not e.is_loop]
        shared = [
            (a, b) for a in edges for b in edges
            if a != b and (a.endpoints & b.endpoints)
        ][0]
        cert = MatchingCertificate(edges=frozenset(shared), maximal=False)
        result = BoundResult(2, 2 * g.num_edges, cert, exact=False)
        with pytest.raises(CertificateError, match="not a matching"):
            verify_certificate(g, result)

    def test_false_maximality_rejected(self):
        g, _ = self._sandwich()
        cert = MatchingCertificate(
            edges=frozenset({g.edges[0]}), maximal=True
        )
        result = BoundResult(1, 2, cert, exact=False)
        with pytest.raises(CertificateError, match="maximality"):
            verify_certificate(g, result)

    def test_overclaimed_lower_bound_rejected(self):
        g, s = self._sandwich()
        inflated = BoundResult(
            lower=s.lower + 1, upper=max(s.upper, s.lower + 1),
            certificate=s.certificate, exact=False,
        )
        with pytest.raises(CertificateError, match="exceeds"):
            verify_certificate(g, inflated)

    def test_underclaimed_upper_bound_rejected(self):
        g, s = self._sandwich()
        deflated = BoundResult(
            lower=0, upper=s.upper - 1,
            certificate=s.certificate, exact=False,
        )
        with pytest.raises(CertificateError, match="below every"):
            verify_certificate(g, deflated)

    def test_missing_certificate_rejected(self):
        g, s = self._sandwich()
        with pytest.raises(CertificateError, match="no certificate"):
            verify_certificate(
                g, BoundResult(s.lower, s.upper, None, False)
            )


# ---------------------------------------------------------------------------
# The shared fractional solver: central == distributed
# ---------------------------------------------------------------------------


def _distributed_fractional_values(graph, delta):
    """Drive the lp_rounding node programs through their fractional
    phases by hand and read off the per-edge variables."""
    programs = {
        v: LPRoundingEDS(graph.degree(v), random.Random(0), delta)
        for v in graph.nodes
    }
    for rnd in range(2 * doubling_phases(delta)):
        outbox = {v: programs[v].send(rnd) for v in graph.nodes}
        for v in graph.nodes:
            inbox = {}
            for i in graph.ports(v):
                u, j = graph.connection(v, i)
                inbox[i] = outbox[u][j]
            programs[v].receive(rnd, inbox)
    return programs


class TestSharedFractionalSolver:
    @pytest.mark.parametrize(
        "family_index,delta",
        [(7, 3), (4, 4)],  # petersen Δ=3, circulant-8 Δ=4
    )
    def test_central_equals_distributed(self, family_index, delta):
        g = REGULAR_FAMILIES[family_index][1]()
        edges, constraints = line_graph_covering_instance(g)
        central = solve_covering_lp(
            len(edges), constraints,
            start=Fraction(1, 2 * delta),
            phases=doubling_phases(delta),
        )
        programs = _distributed_fractional_values(g, delta)
        for index, e in enumerate(edges):
            x_u = programs[e.u].x[e.i]
            x_v = programs[e.v].x[e.j]
            assert x_u == x_v, "endpoints disagree"
            assert x_u == central[index], (
                "central and distributed solves diverge"
            )

    def test_solution_is_feasible(self):
        g = BOUNDED_FAMILIES[1][1]()  # grid-3x4
        edges, constraints = line_graph_covering_instance(g)
        delta = g.max_degree
        values = solve_covering_lp(
            len(edges), constraints,
            start=Fraction(1, 2 * delta),
            phases=doubling_phases(delta),
        )
        for constraint in constraints:
            assert sum(values[i] for i in constraint) >= 1

    def test_vertex_cover_certificate_feasible_everywhere(self):
        for name, make, _ in ALL_FAMILIES:
            g = make()
            cover = fractional_vertex_cover(g, primal_matching(g, seed=0))
            for e in g.edges:
                assert (
                    cover.values.get(e.u, 0) + cover.values.get(e.v, 0) >= 1
                ), name


# ---------------------------------------------------------------------------
# Blossom memoisation (per compiled graph)
# ---------------------------------------------------------------------------


class TestBlossomMemo:
    def test_blossom_runs_once_per_graph(self, monkeypatch):
        import networkx
        import repro.eds.bounds as eds_bounds

        calls = []
        real = networkx.max_weight_matching

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(
            eds_bounds.nx, "max_weight_matching", counting
        )
        g = REGULAR_FAMILIES[6][1]()  # torus-3x3
        first = maximum_matching_size(g)
        assert maximum_matching_size(g) == first
        assert eds_lower_bound(g) >= 1
        exact_bound(g)
        assert len(calls) == 1

    def test_fresh_graph_recomputes(self):
        make = REGULAR_FAMILIES[0][1]
        assert maximum_matching_size(make()) == maximum_matching_size(
            make()
        )


# ---------------------------------------------------------------------------
# Engine threading: dual_bound / auto escalation / records
# ---------------------------------------------------------------------------


def _unit(n=16, d=3, seed=0, **kwargs):
    return JobSpec(
        algorithm="port_one",
        graph=GraphSpec.make("regular", seed=seed, d=d, n=n),
        **kwargs,
    )


class TestEngineThreading:
    def test_dual_bound_record_brackets_exact_optimum(self):
        spec = _unit(optimum="dual_bound")
        record = execute_unit(spec)
        optimum = minimum_eds_size(spec.graph.build())
        assert record.has_interval
        assert record.optimum_lower <= optimum <= record.optimum_upper
        assert record.ratio_lo >= 1
        assert record.ratio_lo <= record.ratio_hi
        assert record.ratio == record.ratio_hi
        assert record.optimum == record.optimum_lower
        assert not record.optimum_exact
        assert record.extra["nu_lower"] <= record.extra["nu_upper"]

    def test_dual_bound_record_roundtrips(self):
        record = execute_unit(_unit(optimum="dual_bound"))
        data = json.loads(record.canonical())
        assert data["optimum_lower"] == record.optimum_lower
        assert ResultRecord.from_json_dict(data) == record

    def test_exact_and_none_records_carry_no_interval_keys(self):
        for mode in ("exact", "none"):
            record = execute_unit(_unit(optimum=mode))
            data = record.to_json_dict()
            assert not record.has_interval
            for field in ("optimum_lower", "optimum_upper",
                          "ratio_lo_num", "ratio_hi_num"):
                assert field not in data, mode

    def test_auto_escalates_to_sandwich_past_the_limit(self, monkeypatch):
        import repro.engine.measures as measures

        assert DUAL_BOUND_EDGE_LIMIT > 48
        monkeypatch.setattr(measures, "DUAL_BOUND_EDGE_LIMIT", 50)
        # m = 96 > 50: auto must now resolve to the sandwich.
        record = execute_unit(_unit(n=64, optimum="auto"))
        assert record.has_interval

    def test_auto_below_limit_keeps_blossom(self):
        # 48 < m = 96 <= DUAL_BOUND_EDGE_LIMIT: the historical path.
        record = execute_unit(_unit(n=64, optimum="auto"))
        assert not record.has_interval
        assert record.has_optimum and not record.optimum_exact

    def test_dual_bound_units_are_deterministic(self):
        spec = _unit(optimum="dual_bound")
        assert execute_unit(spec).canonical() == execute_unit(
            spec
        ).canonical()

    def test_telemetry_spans_and_counters(self):
        with recording() as rec:
            execute_unit(_unit(optimum="dual_bound"))
        names = [s.name for s in rec.spans]
        assert "optimum" in names
        assert "optimum_verify" in names
        optimum_span = next(s for s in rec.spans if s.name == "optimum")
        assert optimum_span.attrs["mode"] == "dual_bound"
        assert optimum_span.attrs["resolved"] == "sandwich"
        assert "gap" in optimum_span.attrs
        assert rec.counters["optimum.sandwich"] == 1
        assert "optimum.gap_total" in rec.counters


class TestSummaryAndCompareIntervals:
    def _interval_record(self, key="k1"):
        return ResultRecord(
            key=key, algorithm="port_one", graph_family="regular",
            graph_label="regular d=3 n=4096", num_nodes=4096,
            num_edges=6144, max_degree=3, solution_size=3000,
            optimum=1229, optimum_exact=False, ratio_num=3000,
            ratio_den=1229, rounds=1, optimum_lower=1229,
            optimum_upper=2040, ratio_lo_num=25, ratio_lo_den=17,
            ratio_hi_num=3000, ratio_hi_den=1229,
        )

    def _point_record(self, key="k2"):
        return ResultRecord(
            key=key, algorithm="port_one", graph_family="regular",
            graph_label="regular d=3 n=16", num_nodes=16, num_edges=24,
            max_degree=3, solution_size=12, optimum=6,
            optimum_exact=True, ratio_num=2, ratio_den=1, rounds=1,
        )

    def test_summary_gains_interval_column_only_when_present(self):
        plain = ResultStore([self._point_record()])
        assert "mean ratio ∈" not in plain.format_summary()
        mixed = ResultStore([self._point_record(), self._interval_record()])
        out = mixed.format_summary()
        assert "mean ratio ∈" in out
        assert "[" in out

    def test_comparison_rows_aggregate_intervals(self):
        from repro.experiments.compare import (
            comparison_rows,
            format_comparison,
        )

        rows = comparison_rows([self._interval_record()])
        (row,) = rows
        assert row.mean_ratio_lo < row.mean_ratio_hi
        assert row.mean_ratio_hi == pytest.approx(3000 / 1229)
        out = format_comparison(rows)
        assert "mean ratio ∈" in out
        plain = format_comparison(comparison_rows([self._point_record()]))
        assert "mean ratio ∈" not in plain


# ---------------------------------------------------------------------------
# Cache-key and record byte-stability against pre-bounds fixtures
# ---------------------------------------------------------------------------


class TestByteStability:
    def _entries(self):
        return json.loads(FIXTURE.read_text())

    def test_pre_bounds_cache_keys_unchanged(self):
        checked = 0
        for entry in self._entries():
            spec = JobSpec.from_json_dict(entry["spec"])
            assert cache_key(spec) == entry["key"], spec
            checked += 1
        assert checked >= 8

    def test_pre_bounds_record_bytes_unchanged(self):
        checked = 0
        for entry in self._entries():
            if "record" not in entry:
                continue
            spec = JobSpec.from_json_dict(entry["spec"])
            assert execute_unit(spec).to_json_dict() == entry["record"]
            checked += 1
        assert checked >= 4

    def test_dual_bound_units_address_under_the_new_schema(self):
        spec = _unit(optimum="dual_bound")
        legacy_payload = {"schema": 2, "unit": spec.to_json_dict()}
        legacy_key = hashlib.sha256(
            canonical_json(legacy_payload).encode()
        ).hexdigest()
        assert cache_key(spec) != legacy_key
        current_payload = {"schema": 3, "unit": spec.to_json_dict()}
        assert cache_key(spec) == hashlib.sha256(
            canonical_json(current_payload).encode()
        ).hexdigest()
