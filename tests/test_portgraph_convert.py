"""Tests for networkx conversion and numbering strategies."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphValidationError, NotRegularGraphError
from repro.portgraph import (
    from_neighbour_orders,
    from_networkx,
    random_numbering,
    to_networkx,
    to_simple_networkx,
)
from repro.portgraph.numbering import factor_pairing_numbering

from tests.conftest import nx_graphs, regular_nx_graphs


class TestFromNeighbourOrders:
    def test_basic(self):
        g = from_neighbour_orders({"u": ["v"], "v": ["u"]})
        assert g.num_edges == 1
        assert g.connection("u", 1) == ("v", 1)

    def test_asymmetric_rejected(self):
        with pytest.raises(GraphValidationError):
            from_neighbour_orders({"u": ["v"], "v": []})

    def test_duplicate_neighbour_rejected(self):
        with pytest.raises(GraphValidationError):
            from_neighbour_orders({"u": ["v", "v"], "v": ["u", "u"]})

    def test_unknown_neighbour_rejected(self):
        with pytest.raises(GraphValidationError):
            from_neighbour_orders({"u": ["ghost"]})

    def test_port_order_matches_positions(self):
        g = from_neighbour_orders(
            {"u": ["w", "v"], "v": ["u"], "w": ["u"]}
        )
        assert g.neighbour("u", 1) == "w"
        assert g.neighbour("u", 2) == "v"


class TestFromNetworkx:
    def test_rejects_directed(self):
        with pytest.raises(GraphValidationError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_rejects_multigraph(self):
        with pytest.raises(GraphValidationError):
            from_networkx(nx.MultiGraph([(0, 1), (0, 1)]))

    def test_rejects_self_loop(self):
        g = nx.Graph()
        g.add_edge(0, 0)
        with pytest.raises(GraphValidationError):
            from_networkx(g)

    def test_sequential_default(self):
        g = from_networkx(nx.path_graph(3))
        # node 1's neighbours sorted by repr: 0 then 2
        assert g.neighbour(1, 1) == 0
        assert g.neighbour(1, 2) == 2

    def test_strategy_must_cover_nodes(self):
        def bad(graph):
            return {0: []}

        with pytest.raises(GraphValidationError):
            from_networkx(nx.path_graph(3), bad)

    def test_strategy_must_return_right_neighbours(self):
        def bad(graph):
            return {v: tuple(graph.nodes) for v in graph.nodes}

        with pytest.raises(GraphValidationError):
            from_networkx(nx.path_graph(3), bad)


class TestToNetworkx:
    def test_round_trip_simple(self):
        original = nx.petersen_graph()
        g = from_networkx(original)
        back = to_simple_networkx(g)
        assert nx.is_isomorphic(original, back)
        assert set(back.nodes) == set(original.nodes)
        assert {frozenset(e) for e in back.edges} == {
            frozenset(e) for e in original.edges
        }

    def test_multigraph_projection(self, multigraph_m):
        back = to_networkx(multigraph_m)
        assert back.number_of_edges() == 4
        loops = [
            (u, v, d)
            for u, v, d in back.edges(data=True)
            if u == v
        ]
        assert len(loops) == 2
        assert sum(1 for *_, d in loops if d["directed_loop"]) == 1


class TestRandomNumbering:
    def test_deterministic_given_seed(self):
        g = nx.random_regular_graph(3, 10, seed=7)
        a = from_networkx(g, random_numbering(42))
        b = from_networkx(g, random_numbering(42))
        assert a == b

    def test_different_seeds_usually_differ(self):
        g = nx.complete_graph(6)
        a = from_networkx(g, random_numbering(1))
        b = from_networkx(g, random_numbering(2))
        assert a != b


class TestFactorPairingNumbering:
    def test_rejects_odd_regular(self):
        with pytest.raises(NotRegularGraphError):
            factor_pairing_numbering(nx.complete_graph(4))  # 3-regular

    def test_rejects_irregular(self):
        with pytest.raises(NotRegularGraphError):
            factor_pairing_numbering(nx.path_graph(4))

    def test_cycle_gets_fully_symmetric_numbering(self):
        g = from_networkx(nx.cycle_graph(5), factor_pairing_numbering)
        # Every edge must have label pair {1, 2}.
        for e in g.edges:
            assert {e.i, e.j} == {1, 2}

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.sampled_from([5, 6, 7, 8, 9]),
        d=st.sampled_from([2, 4]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_every_edge_pairs_odd_even(self, n, d, seed):
        if n <= d:
            n = d + 1 + (d % 2)
        graph = nx.random_regular_graph(d, n, seed=seed)
        g = from_networkx(graph, factor_pairing_numbering)
        for e in g.edges:
            lo, hi = sorted((e.i, e.j))
            assert hi == lo + 1 and lo % 2 == 1, (
                "factor numbering must pair port 2i-1 with port 2i"
            )


@settings(max_examples=30, deadline=None)
@given(graph=nx_graphs(max_nodes=10))
def test_round_trip_preserves_structure(graph):
    g = from_networkx(graph)
    back = to_simple_networkx(g)
    assert {frozenset(e) for e in back.edges} == {
        frozenset(e) for e in graph.edges
    }


@settings(max_examples=20, deadline=None)
@given(graph=regular_nx_graphs(degrees=(2, 4), max_nodes=12))
def test_factor_numbering_produces_valid_graph(graph):
    g = from_networkx(graph, factor_pairing_numbering)
    assert g.regularity() == graph.degree(next(iter(graph.nodes)))
    assert g.is_simple()
