"""Smoke tests: every example script must run to completion.

The examples are part of the public deliverable; each one asserts its own
correctness conditions internally, so running main() is a real test.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} should print something"


def test_examples_present():
    """The deliverable requires a quickstart plus domain scenarios."""
    assert "quickstart" in EXAMPLES
    assert len(EXAMPLES) >= 4
