"""Tests for the standalone double-cover algorithm ([21]), the vertex
cover corollary, and the weighted EDS substrate (§1.2)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.double_cover import (
    DominatingTwoMatching,
    three_approx_vertex_cover,
)
from repro.eds import is_edge_dominating_set, minimum_eds_size
from repro.eds.weighted import (
    greedy_weight_eds,
    minimum_weight_eds,
    total_weight,
)
from repro.exceptions import AlgorithmContractError
from repro.matching import is_k_matching
from repro.portgraph import from_networkx, random_numbering
from repro.portgraph.numbering import factor_pairing_numbering
from repro.runtime import run_anonymous

from tests.conftest import nx_graphs


def brute_force_min_vertex_cover(graph) -> int:
    """Reference exact vertex cover for tiny graphs."""
    from itertools import combinations

    nodes = list(graph.nodes)
    edges = [tuple(e.endpoints) for e in graph.edges]
    if not edges:
        return 0
    for size in range(0, len(nodes) + 1):
        for subset in combinations(nodes, size):
            chosen = set(subset)
            if all(u in chosen or v in chosen for u, v in edges):
                return size
    raise AssertionError("all nodes always cover")


class TestDominatingTwoMatching:
    def test_invalid_delta(self):
        with pytest.raises(AlgorithmContractError):
            DominatingTwoMatching(0)

    def test_degree_over_promise(self):
        g = from_networkx(nx.star_graph(4))
        with pytest.raises(AlgorithmContractError):
            run_anonymous(g, DominatingTwoMatching(2))

    def test_round_count(self):
        g = from_networkx(nx.cycle_graph(8))
        factory = DominatingTwoMatching(2)
        result = run_anonymous(g, factory)
        assert result.rounds == factory.total_rounds() == 4

    def test_breaks_nothing_on_symmetric_cycle(self):
        """On a fully symmetric cycle everyone proposes along port 1 and
        accepts; P is still a dominating 2-matching."""
        g = from_networkx(nx.cycle_graph(10), factor_pairing_numbering)
        result = run_anonymous(g, DominatingTwoMatching(2))
        p = result.edge_set()
        assert is_k_matching(p, 2)
        assert is_edge_dominating_set(g, p)

    @settings(max_examples=40, deadline=None)
    @given(graph=nx_graphs(max_nodes=11), seed=st.integers(0, 10**6))
    def test_always_dominating_two_matching(self, graph, seed):
        g = from_networkx(graph, random_numbering(seed))
        if g.num_edges == 0:
            return
        result = run_anonymous(g, DominatingTwoMatching(g.max_degree))
        p = result.edge_set()
        assert is_k_matching(p, 2)
        assert is_edge_dominating_set(g, p)


class TestVertexCover:
    def test_empty_graph(self):
        g = from_networkx(nx.empty_graph(3))
        assert three_approx_vertex_cover(g) == frozenset()

    @settings(max_examples=30, deadline=None)
    @given(graph=nx_graphs(max_nodes=9), seed=st.integers(0, 10**6))
    def test_is_vertex_cover_within_factor_three(self, graph, seed):
        """Reference [21]: the P-nodes form a vertex cover of size at
        most 3 times the minimum vertex cover."""
        g = from_networkx(graph, random_numbering(seed))
        if g.num_edges == 0:
            return
        cover = three_approx_vertex_cover(g)
        for e in g.edges:
            assert e.endpoints & cover, f"edge {e!r} uncovered"
        assert len(cover) <= 3 * brute_force_min_vertex_cover(g)


class TestWeightedEds:
    def unit_weights(self, g):
        return {e: 1.0 for e in g.edges}

    def test_unit_weights_match_unweighted_optimum(self):
        for base in (nx.path_graph(6), nx.cycle_graph(7), nx.star_graph(5)):
            g = from_networkx(base)
            exact = minimum_weight_eds(g, self.unit_weights(g))
            assert len(exact) == minimum_eds_size(g)

    def test_weighted_optimum_can_avoid_matchings(self):
        """With weights, the optimum EDS need not be a matching: on a
        path a-b-c-d-e with cheap inner edges and expensive outer ones,
        two adjacent cheap edges beat any matching."""
        g = from_networkx(nx.path_graph(5))
        index = {e.endpoints: e for e in g.edges}
        weights = {
            index[frozenset({0, 1})]: 10.0,
            index[frozenset({1, 2})]: 1.0,
            index[frozenset({2, 3})]: 1.0,
            index[frozenset({3, 4})]: 10.0,
        }
        exact = minimum_weight_eds(g, weights)
        assert total_weight(exact, weights) == 2.0
        from repro.matching import is_matching

        assert not is_matching(exact)

    def test_rejects_missing_or_nonpositive_weights(self):
        g = from_networkx(nx.path_graph(3))
        with pytest.raises(AlgorithmContractError):
            minimum_weight_eds(g, {})
        with pytest.raises(AlgorithmContractError):
            minimum_weight_eds(g, {e: 0.0 for e in g.edges})

    def test_empty_graph(self):
        g = from_networkx(nx.empty_graph(2))
        assert minimum_weight_eds(g, {}) == frozenset()

    @settings(max_examples=30, deadline=None)
    @given(graph=nx_graphs(max_nodes=7), seed=st.integers(0, 10**6))
    def test_exact_beats_or_ties_greedy(self, graph, seed):
        g = from_networkx(graph)
        if g.num_edges == 0 or g.num_edges > 10:
            return
        import random

        rng = random.Random(seed)
        weights = {e: rng.uniform(0.5, 5.0) for e in g.edges}
        exact = minimum_weight_eds(g, weights)
        greedy = greedy_weight_eds(g, weights)
        assert is_edge_dominating_set(g, exact)
        assert is_edge_dominating_set(g, greedy)
        assert total_weight(exact, weights) <= total_weight(
            greedy, weights
        ) + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(graph=nx_graphs(max_nodes=6), seed=st.integers(0, 10**6))
    def test_exact_weighted_le_unweighted_when_weights_unit(
        self, graph, seed
    ):
        g = from_networkx(graph)
        if g.num_edges == 0 or g.num_edges > 9:
            return
        exact = minimum_weight_eds(g, self.unit_weights(g))
        assert len(exact) == minimum_eds_size(g)
