"""Tests for the port-numbered graph model (repro.portgraph.graph/ports)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.exceptions import (
    InvolutionError,
    NotRegularGraphError,
    NotSimpleGraphError,
    PortNumberingError,
)
from repro.portgraph import (
    PortEdge,
    PortGraphBuilder,
    PortNumberedGraph,
    from_networkx,
)

from tests.conftest import port_graphs


class TestPortEdge:
    def test_canonical_order_is_stable(self):
        e1 = PortEdge.make("u", 1, "v", 2)
        e2 = PortEdge.make("v", 2, "u", 1)
        assert e1 == e2
        assert hash(e1) == hash(e2)

    def test_ports_and_endpoints(self):
        e = PortEdge.make("u", 1, "v", 2)
        assert e.ports == {("u", 1), ("v", 2)}
        assert e.endpoints == {"u", "v"}
        assert not e.is_loop

    def test_directed_loop(self):
        e = PortEdge.make("v", 3, "v", 3)
        assert e.is_loop
        assert e.is_directed_loop
        assert e.ports == {("v", 3)}

    def test_undirected_loop(self):
        e = PortEdge.make("v", 1, "v", 2)
        assert e.is_loop
        assert not e.is_directed_loop
        assert e.ports == {("v", 1), ("v", 2)}

    def test_other_endpoint(self):
        e = PortEdge.make("u", 1, "v", 2)
        assert e.other_endpoint("u") == "v"
        assert e.other_endpoint("v") == "u"
        with pytest.raises(KeyError):
            e.other_endpoint("w")

    def test_port_at(self):
        e = PortEdge.make("u", 1, "v", 2)
        assert e.port_at("u") == 1
        assert e.port_at("v") == 2
        with pytest.raises(KeyError):
            e.port_at("w")


class TestConstruction:
    def test_single_edge(self, path_graph_p2):
        g = path_graph_p2
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.degree("u") == 1
        assert g.connection("u", 1) == ("v", 1)
        assert g.connection("v", 1) == ("u", 1)

    def test_involution_must_be_self_inverse(self):
        degrees = {"u": 1, "v": 1, "w": 2}
        p = {
            ("u", 1): ("v", 1),
            ("v", 1): ("w", 1),  # not self-inverse
            ("w", 1): ("u", 1),
            ("w", 2): ("w", 2),
        }
        with pytest.raises(InvolutionError):
            PortNumberedGraph(degrees, p)

    def test_involution_domain_must_match_ports(self):
        with pytest.raises(PortNumberingError):
            PortNumberedGraph({"u": 2}, {("u", 1): ("u", 1)})
        with pytest.raises(PortNumberingError):
            PortNumberedGraph(
                {"u": 1}, {("u", 1): ("u", 1), ("u", 2): ("u", 2)}
            )

    def test_negative_degree_rejected(self):
        with pytest.raises(PortNumberingError):
            PortNumberedGraph({"u": -1}, {})

    def test_image_outside_ports_rejected(self):
        with pytest.raises(InvolutionError):
            PortNumberedGraph({"u": 1}, {("u", 1): ("v", 1)})

    def test_isolated_nodes_allowed(self):
        g = PortNumberedGraph({"u": 0, "v": 0}, {})
        assert g.num_nodes == 2
        assert g.num_edges == 0
        assert g.max_degree == 0

    def test_empty_graph(self):
        g = PortNumberedGraph({}, {})
        assert g.num_nodes == 0
        assert g.regularity() is None
        assert g.max_degree == 0


class TestMultigraphFeatures:
    def test_figure2_multigraph(self, multigraph_m):
        g = multigraph_m
        assert g.degree("s") == 3
        assert g.degree("t") == 4
        # edges: two parallel s--t edges, one directed loop at s,
        # one undirected loop at t
        assert g.num_edges == 4
        loops = [e for e in g.edges if e.is_loop]
        assert len(loops) == 2
        directed = [e for e in loops if e.is_directed_loop]
        assert len(directed) == 1
        assert directed[0].ports == {("s", 3)}
        assert not g.is_simple()

    def test_require_simple_raises(self, multigraph_m):
        with pytest.raises(NotSimpleGraphError):
            multigraph_m.require_simple()

    def test_parallel_edges_not_simple(self):
        b = PortGraphBuilder()
        b.add_nodes({"u": 2, "v": 2})
        b.connect("u", 1, "v", 1)
        b.connect("u", 2, "v", 2)
        g = b.build()
        assert g.num_edges == 2
        assert not g.is_simple()


class TestAccessors:
    def test_neighbours_by_port_order(self, figure2_like_h):
        g = figure2_like_h
        assert g.neighbours("b") == ("c", "a", "e")
        assert g.neighbours("a") == ("b", "d")

    def test_edge_at_round_trip(self, figure2_like_h):
        g = figure2_like_h
        for v in g.nodes:
            for i in g.ports(v):
                e = g.edge_at(v, i)
                assert (v, i) in e.ports

    def test_edges_at_ordered_by_port(self, figure2_like_h):
        g = figure2_like_h
        edges = g.edges_at("c")
        assert [e.other_endpoint("c") for e in edges] == ["d", "e", "b"]

    def test_port_between(self, figure2_like_h):
        g = figure2_like_h
        assert g.port_between("a", "b") == (1, 2)
        assert g.port_between("b", "a") == (2, 1)
        with pytest.raises(KeyError):
            g.port_between("a", "c")

    def test_unknown_port_raises(self, path_graph_p2):
        with pytest.raises(KeyError):
            path_graph_p2.connection("u", 2)
        with pytest.raises(KeyError):
            path_graph_p2.edge_at("zzz", 1)

    def test_has_edge(self, figure2_like_h):
        g = figure2_like_h
        assert g.has_edge("a", "b")
        assert not g.has_edge("a", "c")


class TestRegularity:
    def test_regular_graph(self):
        g = from_networkx(nx.cycle_graph(5))
        assert g.regularity() == 2
        assert g.require_regular() == 2

    def test_irregular_graph(self, figure2_like_h):
        assert figure2_like_h.regularity() is None
        with pytest.raises(NotRegularGraphError):
            figure2_like_h.require_regular()

    def test_max_degree(self, figure2_like_h):
        assert figure2_like_h.max_degree == 3


class TestEquality:
    def test_equal_graphs(self, path_graph_p2):
        b = PortGraphBuilder()
        b.add_nodes({"u": 1, "v": 1})
        b.connect("u", 1, "v", 1)
        assert b.build() == path_graph_p2
        assert hash(b.build()) == hash(path_graph_p2)

    def test_unequal_graphs(self, path_graph_p2, triangle):
        assert path_graph_p2 != triangle
        assert path_graph_p2 != "not a graph"


@settings(max_examples=40, deadline=None)
@given(g=port_graphs(max_nodes=9))
def test_handshake_lemma(g: PortNumberedGraph):
    """Sum of degrees equals twice the number of (non-loop) edges."""
    assert g.is_simple()
    assert sum(g.degree(v) for v in g.nodes) == 2 * g.num_edges


@settings(max_examples=40, deadline=None)
@given(g=port_graphs(max_nodes=9))
def test_involution_orbit_structure(g: PortNumberedGraph):
    """Every port belongs to exactly one edge; ports partition into edges."""
    all_ports = {(v, i) for v in g.nodes for i in g.ports(v)}
    covered: set = set()
    for e in g.edges:
        assert not (e.ports & covered)
        covered |= e.ports
    assert covered == all_ports


@settings(max_examples=40, deadline=None)
@given(g=port_graphs(max_nodes=9))
def test_connection_symmetry(g: PortNumberedGraph):
    for v in g.nodes:
        for i in g.ports(v):
            u, j = g.connection(v, i)
            assert g.connection(u, j) == (v, i)
