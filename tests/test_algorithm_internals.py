"""White-box tests of the algorithms' round schedules and setup protocol.

The global lockstep schedules are the trickiest part of the node
programs: every node must agree, from its parameter alone, on which
phase each round belongs to.  These tests pin the schedule arithmetic
and the distributed Section 5 setup against the centralised reference.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import pair_at, pair_schedule_index
from repro.algorithms.bounded_degree import (
    BoundedDegreeEDS,
    _BoundedDegreeProgram,
)
from repro.algorithms.regular_odd import RegularOddEDS
from repro.portgraph import (
    distinguishable_edge,
    from_networkx,
    label_pairs_at,
    random_numbering,
)
from repro.runtime import run_anonymous
from repro.runtime.scheduler import _execute

from tests.conftest import nx_graphs


class TestPairSchedule:
    def test_pair_round_trip(self):
        for bound in (1, 2, 3, 5):
            for step in range(bound * bound):
                i, j = pair_at(step, bound)
                assert 1 <= i <= bound and 1 <= j <= bound
                assert pair_schedule_index(i, j, bound) == step

    def test_lexicographic_order(self):
        pairs = [pair_at(t, 3) for t in range(9)]
        assert pairs == sorted(pairs)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pair_at(9, 3)
        with pytest.raises(ValueError):
            pair_at(-1, 3)


class TestBoundedSchedule:
    @pytest.mark.parametrize("delta", (3, 5, 7, 9))
    def test_windows_tile_the_run(self, delta):
        """Every step of the schedule maps to exactly one phase window,
        windows appear in order, and the total matches total_rounds."""
        program = _BoundedDegreeProgram(degree=delta, odd_delta=delta)
        total = program._total_steps()
        assert total + 2 == BoundedDegreeEDS(delta).total_rounds()

        seen_phases = []
        for step in range(total):
            located = program._locate(step)
            if not seen_phases or seen_phases[-1] != located[:2]:
                seen_phases.append(located[:2])
        # phase I once, stages 2..delta once each in order, phase III once
        assert seen_phases[0][0] == "I"
        stage_sequence = [p[1] for p in seen_phases if p[0] == "II"]
        assert stage_sequence == list(range(2, delta + 1))
        assert seen_phases[-1][0] == "III"

    @pytest.mark.parametrize("delta", (3, 5))
    def test_stage_window_lengths(self, delta):
        program = _BoundedDegreeProgram(degree=delta, odd_delta=delta)
        for stage in range(2, delta + 1):
            width = program._stage_offset(stage + 1) - program._stage_offset(
                stage
            )
            assert width == 1 + 2 * stage


class TestSetupProtocolAgreesWithStatics:
    """The two message-passing setup rounds must compute exactly the
    centralised Section 5 data, on every graph."""

    class _Introspect(RegularOddEDS):
        """Halt right after setup, exposing the learned state."""

        def algo_send(self, step):
            return {}

        def algo_receive(self, step, inbox):
            self.halt(frozenset())

    @settings(max_examples=30, deadline=None)
    @given(graph=nx_graphs(max_nodes=9), seed=st.integers(0, 10**6))
    def test_distributed_setup_matches_reference(self, graph, seed):
        g = from_networkx(graph, random_numbering(seed))
        programs = {}
        for v in g.nodes:
            prog = self._Introspect(g.degree(v))
            if g.degree(v) == 0:
                prog.halt(frozenset())
            programs[v] = prog
        _execute(g, programs, 1000, False)

        for v in g.nodes:
            if g.degree(v) == 0:
                continue
            prog = programs[v]
            # peer ports = static label pairs
            static_pairs = label_pairs_at(g, v)
            for i in g.ports(v):
                assert frozenset({i, prog.peer_port[i]}) == static_pairs[i]
                assert prog.peer_degree[i] == g.degree(g.neighbour(v, i))
            # distinguishable port = static distinguishable edge
            static_edge = distinguishable_edge(g, v)
            if static_edge is None:
                assert prog.distinguishable_port is None
            else:
                assert prog.distinguishable_port == static_edge.port_at(v)


class TestMessageHomogeneity:
    """In the lockstep schedules every in-flight message in one round has
    the same tag — a strong detector of schedule desynchronisation."""

    @pytest.mark.parametrize("d,n", [(3, 10), (5, 12)])
    def test_regular_odd_rounds_are_homogeneous(self, d, n):
        g = from_networkx(
            nx.random_regular_graph(d, n, seed=n), random_numbering(n)
        )
        result = run_anonymous(g, RegularOddEDS, record_trace=True)
        for round_trace in result.trace:
            tags = {
                msg.payload[0]
                for msg in round_trace.messages
                if isinstance(msg.payload, tuple)
            }
            assert len(tags) <= 1, (
                f"round {round_trace.round_number} mixes tags {tags}"
            )

    @pytest.mark.parametrize("delta", (3, 4))
    def test_bounded_rounds_are_homogeneous(self, delta):
        g = from_networkx(
            nx.random_regular_graph(delta, 10, seed=delta),
            random_numbering(delta),
        )
        result = run_anonymous(
            g, BoundedDegreeEDS(delta), record_trace=True
        )
        for round_trace in result.trace:
            tags = set()
            for msg in round_trace.messages:
                payload = msg.payload
                if isinstance(payload, tuple) and payload:
                    tag = payload[0]
                    # responses acc/rej share a sub-round by design
                    if tag in ("acc", "rej"):
                        tag = "response"
                    tags.add(tag)
            assert len(tags) <= 1, (
                f"round {round_trace.round_number} mixes tags {tags}"
            )
