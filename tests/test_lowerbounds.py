"""Tests for the Theorem 1/2 lower-bound constructions and the adversary
driver — the end-to-end tightness differential tests of Table 1."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms import BoundedDegreeEDS, PortOneEDS, RegularOddEDS
from repro.eds import (
    is_edge_dominating_set,
    minimum_eds_size,
    regular_ratio,
)
from repro.exceptions import ConstructionError
from repro.lowerbounds import (
    build_even_lower_bound,
    build_odd_lower_bound,
    run_adversary,
)
from repro.portgraph import verify_covering_map


class TestEvenConstruction:
    @pytest.mark.parametrize("d", [2, 4, 6, 8])
    def test_structure(self, d):
        inst = build_even_lower_bound(d)
        assert inst.graph.regularity() == d
        assert inst.graph.num_nodes == 2 * d - 1
        assert inst.graph.num_edges == d * (2 * d - 1) // 2
        assert inst.optimum_size == d // 2
        assert inst.forced_ratio == regular_ratio(d)

    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_quotient_is_single_node(self, d):
        inst = build_even_lower_bound(d)
        assert inst.quotient.num_nodes == 1
        verify_covering_map(inst.graph, inst.quotient, inst.covering_map)

    @pytest.mark.parametrize("d", [2, 4])
    def test_claimed_optimum_is_truly_minimum(self, d):
        inst = build_even_lower_bound(d)
        assert minimum_eds_size(inst.graph) == inst.optimum_size

    def test_rejects_odd_or_small(self):
        with pytest.raises(ConstructionError):
            build_even_lower_bound(3)
        with pytest.raises(ConstructionError):
            build_even_lower_bound(0)

    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_no_node_has_distinguishable_neighbour(self, d):
        """The adversarial numbering erases all local asymmetry."""
        from repro.portgraph import distinguishable_neighbour

        inst = build_even_lower_bound(d)
        for v in inst.graph.nodes:
            assert distinguishable_neighbour(inst.graph, v) is None


class TestOddConstruction:
    @pytest.mark.parametrize("d", [1, 3, 5, 7])
    def test_structure(self, d):
        k = (d - 1) // 2
        inst = build_odd_lower_bound(d)
        assert inst.graph.regularity() == d
        # d components of 4k+1 nodes, plus d + 2k hub nodes
        assert inst.graph.num_nodes == d * (4 * k + 1) + d + 2 * k
        assert inst.optimum_size == (k + 1) * d
        assert inst.forced_ratio == regular_ratio(d)

    @pytest.mark.parametrize("d", [1, 3, 5])
    def test_quotient_shape(self, d):
        inst = build_odd_lower_bound(d)
        assert inst.quotient.num_nodes == d + 1
        verify_covering_map(inst.graph, inst.quotient, inst.covering_map)

    def test_claimed_optimum_is_truly_minimum_d3(self):
        inst = build_odd_lower_bound(3)
        assert minimum_eds_size(inst.graph) == inst.optimum_size == 6

    def test_optimum_dominates(self):
        inst = build_odd_lower_bound(5)
        assert is_edge_dominating_set(inst.graph, inst.optimum)

    def test_rejects_even(self):
        with pytest.raises(ConstructionError):
            build_odd_lower_bound(4)


class TestTightnessEven:
    """Theorem 1 + Theorem 3: the measured ratio must be *exactly* 4-2/d."""

    @pytest.mark.parametrize("d", [2, 4, 6, 8, 10])
    def test_port_one_achieves_bound_exactly(self, d):
        inst = build_even_lower_bound(d)
        report = run_adversary(inst, PortOneEDS)
        assert report.feasible
        assert report.fibres_uniform
        assert report.is_tight, (
            f"expected ratio {inst.forced_ratio}, measured {report.ratio}"
        )

    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_bounded_degree_algorithm_cannot_beat_bound(self, d):
        """Corollary 1: A(Δ) on the even construction with Δ = d is forced
        to (and achieves) 4 - 1/k with k = d/2."""
        inst = build_even_lower_bound(d)
        report = run_adversary(inst, BoundedDegreeEDS(d))
        assert report.feasible
        assert report.fibres_uniform
        assert report.meets_lower_bound
        assert report.ratio == Fraction(4) - Fraction(2, d)

    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_bounded_degree_next_odd_delta(self, d):
        """A(Δ) with Δ = d + 1 (odd) has the same tight guarantee."""
        inst = build_even_lower_bound(d)
        report = run_adversary(inst, BoundedDegreeEDS(d + 1))
        assert report.feasible
        assert report.ratio == Fraction(4) - Fraction(2, d)


class TestTightnessOdd:
    """Theorem 2 + Theorem 4: the measured ratio must be *exactly*
    4 - 6/(d+1)."""

    @pytest.mark.parametrize("d", [1, 3, 5, 7])
    def test_regular_odd_achieves_bound_exactly(self, d):
        inst = build_odd_lower_bound(d)
        report = run_adversary(inst, RegularOddEDS)
        assert report.feasible
        assert report.fibres_uniform
        assert report.is_tight, (
            f"expected ratio {inst.forced_ratio}, measured {report.ratio}"
        )

    @pytest.mark.parametrize("d", [3, 5])
    def test_round_count_on_construction(self, d):
        inst = build_odd_lower_bound(d)
        report = run_adversary(inst, RegularOddEDS)
        assert report.rounds == RegularOddEDS.total_rounds(d)

    @pytest.mark.parametrize("d", [2, 4])
    def test_theorem4_machinery_collapses_on_even_construction(self, d):
        """On the even construction no node has a distinguishable
        neighbour, so Theorem 4's phase I selects nothing and the output
        is infeasible — exactly why the even case needs Theorem 3."""
        from repro.exceptions import AlgorithmContractError
        from repro.lowerbounds import run_adversary as run

        inst = build_even_lower_bound(d)
        with pytest.raises(AlgorithmContractError):
            run(inst, RegularOddEDS)
        report = run(inst, RegularOddEDS, require_feasible=False)
        assert not report.feasible
        assert report.solution_size == 0

    @pytest.mark.parametrize("d", [3, 5])
    def test_port_one_on_odd_is_worse_than_theorem4(self, d):
        """PortOne is feasible on odd-regular too, but cannot beat the
        even-style bound; Theorem 4's algorithm is strictly better here."""
        inst = build_odd_lower_bound(d)
        port_one = run_adversary(inst, PortOneEDS)
        theorem4 = run_adversary(inst, RegularOddEDS)
        assert port_one.feasible
        assert theorem4.ratio <= port_one.ratio
        assert theorem4.ratio == inst.forced_ratio
