"""Tests for the identified-model maximal matching baseline."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import GreedyMaximalMatchingIds
from repro.eds import is_edge_dominating_set, minimum_eds_size
from repro.matching import is_matching, is_maximal_matching
from repro.portgraph import from_networkx, random_numbering
from repro.runtime import run_identified

from tests.conftest import nx_graphs


class TestBaseline:
    def test_single_edge(self, path_graph_p2):
        result = run_identified(path_graph_p2, GreedyMaximalMatchingIds)
        assert result.edge_set() == frozenset(path_graph_p2.edges)

    def test_triangle(self, triangle):
        result = run_identified(triangle, GreedyMaximalMatchingIds)
        m = result.edge_set()
        assert is_maximal_matching(triangle, m)
        assert len(m) == 1

    def test_cycle_symmetry_broken_by_ids(self):
        """Anonymous deterministic algorithms cannot compute a maximal
        matching on a symmetric cycle; identifiers break the symmetry."""
        g = from_networkx(nx.cycle_graph(8))
        result = run_identified(g, GreedyMaximalMatchingIds)
        assert is_maximal_matching(g, result.edge_set())

    def test_custom_ids(self, triangle):
        ids = {v: 100 - k for k, v in enumerate(triangle.nodes)}
        result = run_identified(triangle, GreedyMaximalMatchingIds, ids=ids)
        assert is_maximal_matching(triangle, result.edge_set())

    @settings(max_examples=40, deadline=None)
    @given(graph=nx_graphs(max_nodes=12), seed=st.integers(0, 10**6))
    def test_always_maximal_matching(self, graph, seed):
        g = from_networkx(graph, random_numbering(seed))
        result = run_identified(g, GreedyMaximalMatchingIds)
        m = result.edge_set()
        assert is_matching(m)
        assert is_maximal_matching(g, m)
        assert is_edge_dominating_set(g, m)

    @settings(max_examples=25, deadline=None)
    @given(graph=nx_graphs(max_nodes=9), seed=st.integers(0, 10**6))
    def test_two_approximation(self, graph, seed):
        g = from_networkx(graph, random_numbering(seed))
        if g.num_edges == 0:
            return
        result = run_identified(g, GreedyMaximalMatchingIds)
        assert len(result.edge_set()) <= 2 * minimum_eds_size(g)
