"""Exact solver vs. closed-form minimum-maximal-matching values.

γ'(G) denotes the minimum EDS / minimum maximal matching size.  Known
formulas (Yannakakis-Gavril [25] and folklore):

* paths:    γ'(P_n) = ceil((n - 1) / 3)
* cycles:   γ'(C_n) = ceil(n / 3)
* complete: γ'(K_n) = floor(n / 2) (any two unmatched nodes would leave
  an undominated edge between them)
* stars:    γ'(K_{1,m}) = 1
* complete bipartite: γ'(K_{a,b}) = min(a, b) (a maximal matching must
  exhaust one side, else an uncovered edge crosses the leftovers)

Each formula is asserted against the branch-and-bound solver, making
these tests an independent ground-truth check of the exact optimum that
all ratio measurements rely on.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.eds import minimum_eds_size
from repro.portgraph import from_networkx


@pytest.mark.parametrize("n", range(2, 12))
def test_paths(n):
    expected = -(-(n - 1) // 3)  # ceil((n-1)/3)
    assert minimum_eds_size(from_networkx(nx.path_graph(n))) == expected


@pytest.mark.parametrize("n", range(3, 13))
def test_cycles(n):
    expected = -(-n // 3)  # ceil(n/3)
    assert minimum_eds_size(from_networkx(nx.cycle_graph(n))) == expected


@pytest.mark.parametrize("n", range(2, 9))
def test_complete_graphs(n):
    assert minimum_eds_size(from_networkx(nx.complete_graph(n))) == n // 2


@pytest.mark.parametrize("m", range(1, 8))
def test_stars(m):
    assert minimum_eds_size(from_networkx(nx.star_graph(m))) == 1


@pytest.mark.parametrize("a,b", [(1, 1), (1, 4), (2, 2), (2, 5), (3, 3), (3, 4)])
def test_complete_bipartite(a, b):
    graph = from_networkx(nx.complete_bipartite_graph(a, b))
    assert minimum_eds_size(graph) == min(a, b)


def test_petersen_graph():
    # The Petersen graph has γ' = 3 (a known value).
    assert minimum_eds_size(from_networkx(nx.petersen_graph())) == 3


@pytest.mark.parametrize("dim,expected", [(1, 1), (2, 2), (3, 3)])
def test_hypercubes(dim, expected):
    graph = from_networkx(
        nx.convert_node_labels_to_integers(nx.hypercube_graph(dim))
    )
    assert minimum_eds_size(graph) == expected
