"""Tests for the repro-eds compare experiment and its satellites.

The acceptance criteria under test:

* the comparison grid spans ≥ 3 baselines and ≥ 2 graph families and
  produces a deterministic side-by-side table;
* the table (records and CLI stdout) is byte-identical across
  backends, worker counts, and cached re-runs;
* cache gc automation (`--cache-max-size`) evicts after the sweep;
* ``Measure.preferred_backend`` steers the auto backend away from
  calibration for comparison grids (and into fan-out for measures that
  ask for it).
"""

from __future__ import annotations

import pytest

from repro import api
from repro.baselines import BASELINE_ALGORITHMS
from repro.cli import main
from repro.engine import (
    GraphSpec,
    JobSpec,
    ResultCache,
    get_scenario,
    scenario_names,
)
from repro.engine.backends import AutoBackend, ExecutionBackend, InlineBackend
from repro.experiments.compare import (
    COMPARE_ALGORITHMS,
    comparison_rows,
    comparison_units,
    format_comparison,
    run_comparison,
)
from repro.registry import MEASURES
from repro.registry.measures import Measure


def small_units(**kwargs):
    defaults = dict(
        families=("regular", "bounded"), degrees=(3,), sizes=(8,), seeds=1
    )
    defaults.update(kwargs)
    return comparison_units(**defaults)


class TestGridExpansion:
    def test_defaults_cover_baselines_and_families(self):
        units = comparison_units()
        assert len(set(BASELINE_ALGORITHMS)
                   & {u.algorithm for u in units}) >= 3
        assert {u.graph.family for u in units} == {"regular", "bounded"}
        assert all(u.measure == "comparison" for u in units)

    def test_regular_odd_only_on_odd_regular_cells(self):
        units = comparison_units(degrees=(3, 4), sizes=(12,), seeds=1)
        odd = [u for u in units if u.algorithm == "regular_odd"]
        assert odd
        assert all(u.graph.family == "regular" for u in odd)
        assert all(dict(u.graph.params)["d"] % 2 == 1 for u in odd)

    def test_scenario_registered(self):
        assert "comparison" in scenario_names()
        grid = get_scenario("comparison")
        assert grid.measure == "comparison"
        assert set(grid.algorithms) == set(COMPARE_ALGORITHMS)
        assert grid.expand()

    def test_algorithm_override(self):
        units = small_units(algorithms=("port_one", "central_optimal"))
        assert {u.algorithm for u in units} == {
            "port_one", "central_optimal"
        }

    def test_explicitly_empty_algorithms_expand_to_nothing(self, capsys):
        # () must not silently fall back to the 7-algorithm default.
        assert small_units(algorithms=()) == []
        assert main([*TestCli.CLI, "--algorithms", ""]) == 2
        assert "zero feasible work units" in capsys.readouterr().err


class TestDeterminism:
    def test_rows_byte_identical_across_backends(self):
        outcomes = {
            backend: run_comparison(
                ("regular", "bounded"), (3,), (8,), 1,
                backend=backend, workers=2,
            )
            for backend in ("inline", "thread", "process", "auto")
        }
        tables = {
            backend: format_comparison(outcome.rows)
            for backend, outcome in outcomes.items()
        }
        assert len(set(tables.values())) == 1
        canonicals = {
            backend: [r.canonical() for r in outcome.execution.records]
            for backend, outcome in outcomes.items()
        }
        assert len({tuple(c) for c in canonicals.values()}) == 1

    def test_cached_rerun_identical(self, tmp_path):
        first = run_comparison(("regular",), (3,), (8,), 1,
                               cache=tmp_path, backend="inline")
        second = run_comparison(("regular",), (3,), (8,), 1,
                                cache=tmp_path, backend="process", workers=2)
        assert second.execution.cache_hits == len(second.units)
        assert second.execution.computed == 0
        assert format_comparison(first.rows) == format_comparison(second.rows)

    def test_rows_aggregate_by_family_and_algorithm(self):
        outcome = run_comparison(("regular",), (3,), (8, 10), 2,
                                 algorithms=("port_one", "central_optimal"),
                                 backend="inline")
        rows = comparison_rows(outcome.execution.records)
        assert [(r.family, r.algorithm) for r in rows] == [
            ("regular", "port_one"), ("regular", "central_optimal"),
        ]
        assert all(r.units == 4 for r in rows)
        anchor = rows[-1]
        assert anchor.mean_ratio == 1.0 and anchor.mean_messages == 0.0


class TestCli:
    CLI = ["compare", "--families", "regular", "--degrees", "3",
           "--sizes", "8", "--seeds", "1", "--quiet", "--no-cache"]

    def test_stdout_identical_across_backends(self, capsys):
        assert main([*self.CLI, "--backend", "inline"]) == 0
        inline_out = capsys.readouterr().out
        assert main([*self.CLI, "--backend", "process", "--workers", "2"]) == 0
        process_out = capsys.readouterr().out
        assert inline_out == process_out
        for name in ("port_one", "greedy_mds_line", "lp_rounding",
                     "forest_dds", "central_optimal"):
            assert name in inline_out

    def test_unknown_family_rejected(self, capsys):
        assert main(["compare", "--families", "petersen"]) == 2
        assert "unknown comparison families" in capsys.readouterr().err

    def test_unknown_algorithm_rejected(self, capsys):
        assert main([*self.CLI, "--algorithms", "nope"]) == 2
        assert "unknown algorithms" in capsys.readouterr().err

    def test_bad_cache_max_size_rejected(self, capsys):
        assert main([*self.CLI, "--cache-max-size", "many"]) == 2
        assert "cannot parse size" in capsys.readouterr().err

    def test_jsonl_written(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        assert main([*self.CLI, "--jsonl", str(path)]) == 0
        capsys.readouterr()
        assert path.read_text().count("\n") > 0


class TestCacheGcAutomation:
    def test_run_sweep_evicts_to_cap(self, tmp_path):
        units = [
            JobSpec("port_one", GraphSpec.make("regular", seed=s, d=3, n=12))
            for s in range(6)
        ]
        report = api.run_sweep(units, cache=tmp_path, backend="inline",
                               cache_max_size="1KiB")
        assert report.gc is not None
        assert report.gc.removed > 0
        assert report.gc.kept_bytes <= 1024
        assert ResultCache(tmp_path).stats().total_bytes <= 1024

    def test_warm_run_records_survive_gc(self, tmp_path):
        import os
        import time

        sweep_a = [
            JobSpec("port_one", GraphSpec.make("regular", seed=s, d=3, n=12))
            for s in range(3)
        ]
        sweep_b = [
            JobSpec("port_one", GraphSpec.make("regular", seed=s, d=2, n=12))
            for s in range(3)
        ]
        cache = ResultCache(tmp_path)
        api.run_sweep(sweep_a, cache=cache, backend="inline")
        # Backdate A's records, then write B: without the touch pass a
        # warm capped re-run of A would evict its own working set.
        past = time.time() - 3600
        for key in list(cache.keys()):
            os.utime(cache.path_for(key), (past, past))
        api.run_sweep(sweep_b, cache=cache, backend="inline")

        from repro.engine import cache_key

        a_keys = {cache_key(u) for u in sweep_a}
        cap = sum(
            cache.path_for(k).stat().st_size for k in a_keys
        )
        report = api.run_sweep(sweep_a, cache=cache, backend="inline",
                               cache_max_size=cap)
        assert report.cache_hits == len(sweep_a)  # fully warm
        assert a_keys <= set(cache.keys())  # this run's records survive
        assert report.gc is not None and report.gc.removed > 0  # B evicted

    def test_gc_is_opt_in(self, tmp_path):
        units = [JobSpec("port_one",
                         GraphSpec.make("regular", seed=0, d=3, n=12))]
        report = api.run_sweep(units, cache=tmp_path, backend="inline")
        assert report.gc is None
        assert "not requested" in report.gc_line()

    def test_gc_without_cache_is_noop(self):
        units = [JobSpec("port_one",
                         GraphSpec.make("regular", seed=0, d=3, n=12))]
        report = api.run_sweep(units, cache=None, cache_max_size="1KiB")
        assert report.gc is None

    def test_sweep_cli_flag(self, tmp_path, capsys):
        assert main([
            "sweep", "--degrees", "2", "--sizes", "12", "--seeds", "2",
            "--backend", "inline", "--quiet",
            "--cache-dir", str(tmp_path), "--cache-max-size", "1KiB",
        ]) == 0
        out = capsys.readouterr().out
        assert "cache gc: evicted" in out
        assert ResultCache(tmp_path).stats().total_bytes <= 1024


class RecordingFanout(ExecutionBackend):
    name = "recording"

    def __init__(self):
        self.batches: list[int] = []

    def describe(self) -> str:
        return "recording"

    def run(self, pending):
        self.batches.append(len(pending))
        yield from InlineBackend().run(pending)


class TestPreferredBackendHint:
    def units(self, measure="comparison", count=8):
        return [
            (i, JobSpec(
                "port_one", GraphSpec.make("regular", seed=i, d=3, n=8),
                measure=measure, optimum="none",
            ))
            for i in range(count)
        ]

    def test_inline_hint_skips_calibration(self):
        fanout = RecordingFanout()
        backend = AutoBackend(workers=4, fanout=fanout)
        results = list(backend.run(self.units()))
        assert len(results) == 8
        assert fanout.batches == []  # genuinely tiny units: no fan-out
        assert backend.describe() == "auto:inline"
        assert "measure hint" in backend.decision
        assert "calibration skipped" in backend.decision

    def test_inline_hint_keeps_reescalation_safety_net(self):
        # The hint skips the probe, not the provisional clock: a unit
        # that itself clears the threshold re-escalates the remainder.
        counter = iter(range(10 ** 6))
        fanout = RecordingFanout()
        backend = AutoBackend(
            workers=4, fanout=fanout,
            clock=lambda: next(counter) * 1.0,  # every unit looks slow
        )
        results = list(backend.run(self.units()))
        assert len(results) == 8
        assert fanout.batches == [7]  # first unit inline, rest fan out
        assert "measure hint" in backend.decision
        assert "re-escalated" in backend.decision

    def test_process_hint_fans_out_immediately(self):
        class ProcessHungryMeasure(Measure):
            name = "test_hint_process"
            preferred_backend = "process"
            check_feasible = False

        with MEASURES.temporarily(
            "test_hint_process", ProcessHungryMeasure()
        ):
            fanout = RecordingFanout()
            backend = AutoBackend(workers=4, fanout=fanout)
            results = list(backend.run(
                self.units(measure="test_hint_process", count=5)
            ))
        assert len(results) == 5
        assert fanout.batches == [5]
        assert "measure hint" in backend.decision

    def test_mixed_hints_fall_back_to_calibration(self):
        mixed = self.units(count=3) + self.units(measure="quality", count=3)
        backend = AutoBackend(workers=4)
        results = list(backend.run([(i, u) for i, (_, u) in enumerate(mixed)]))
        assert len(results) == 6
        assert "measure hint" not in backend.decision

    def test_hint_ignored_without_workers(self):
        class ProcessHungryMeasure(Measure):
            name = "test_hint_serial"
            preferred_backend = "process"
            check_feasible = False

        with MEASURES.temporarily(
            "test_hint_serial", ProcessHungryMeasure()
        ):
            backend = AutoBackend(workers=1)
            results = list(backend.run(
                self.units(measure="test_hint_serial", count=3)
            ))
        assert len(results) == 3
        assert backend.describe() == "auto:inline"


@pytest.mark.parametrize("algorithm", BASELINE_ALGORITHMS)
def test_baselines_grid_safe_in_plain_sweeps(algorithm):
    """Baselines drop into ordinary quality sweeps, not just compare."""
    report = api.run_sweep(
        [JobSpec(algorithm, GraphSpec.make("regular", seed=0, d=3, n=10))],
        backend="inline",
    )
    record = report.records[0]
    assert record.algorithm == algorithm
    assert record.solution_size >= record.optimum > 0
