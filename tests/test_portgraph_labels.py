"""Tests for Section 5 machinery: label pairs, distinguishable neighbours,
and the matchings M(i, j) (Lemmas 1 and 2)."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings

from repro.portgraph import (
    all_matchings,
    distinguishable_edge,
    distinguishable_neighbour,
    from_networkx,
    label_pair,
    label_pairs_at,
    matching_m,
    uniquely_labelled_edges,
)
from repro.portgraph.numbering import factor_pairing_numbering

from tests.conftest import port_graphs


class TestLabelPairs:
    def test_label_pair_symmetry(self, figure2_like_h):
        g = figure2_like_h
        assert label_pair(g, "a", "b") == label_pair(g, "b", "a")
        assert label_pair(g, "a", "b") == {1, 2}

    def test_label_pairs_at(self, figure2_like_h):
        pairs = label_pairs_at(figure2_like_h, "b")
        assert pairs == {
            1: frozenset({1, 3}),
            2: frozenset({1, 2}),
            3: frozenset({1, 3}),
        }


class TestDistinguishableNeighbours:
    """The documented properties of the Figure 2 example."""

    def test_a_has_no_uniquely_labelled_edges(self, figure2_like_h):
        assert uniquely_labelled_edges(figure2_like_h, "a") == ()
        assert distinguishable_neighbour(figure2_like_h, "a") is None

    def test_a_is_distinguishable_neighbour_of_b(self, figure2_like_h):
        assert distinguishable_neighbour(figure2_like_h, "b") == "a"

    def test_d_is_distinguishable_neighbour_of_c(self, figure2_like_h):
        assert distinguishable_neighbour(figure2_like_h, "c") == "d"

    def test_distinguishable_edge_contains_node(self, figure2_like_h):
        e = distinguishable_edge(figure2_like_h, "b")
        assert "b" in e.endpoints and "a" in e.endpoints

    def test_symmetric_numbering_has_no_distinguishable(self):
        # Factor numbering of a cycle gives every edge label pair {1, 2}.
        g = from_networkx(nx.cycle_graph(6), factor_pairing_numbering)
        for v in g.nodes:
            assert distinguishable_neighbour(g, v) is None


class TestMatchingM:
    def test_m_contains_expected_edge(self, figure2_like_h):
        g = figure2_like_h
        # b's distinguishable edge is {b, a} with p(b, 2) = (a, 1)
        m = matching_m(g, 2, 1)
        assert any(e.endpoints == {"a", "b"} for e in m)

    def test_m_empty_for_unused_pair(self, figure2_like_h):
        assert matching_m(figure2_like_h, 3, 2) == frozenset()

    def test_all_matchings_cover_odd_nodes(self, figure2_like_h):
        g = figure2_like_h
        union = set()
        for m in all_matchings(g).values():
            for e in m:
                union |= e.endpoints
        odd_nodes = {v for v in g.nodes if g.degree(v) % 2 == 1}
        assert odd_nodes <= union


@settings(max_examples=60, deadline=None)
@given(g=port_graphs(max_nodes=10))
def test_lemma1_odd_degree_has_distinguishable_neighbour(g):
    """Lemma 1: every node of odd degree has a distinguishable neighbour."""
    for v in g.nodes:
        if g.degree(v) % 2 == 1:
            assert distinguishable_neighbour(g, v) is not None


@settings(max_examples=60, deadline=None)
@given(g=port_graphs(max_nodes=10))
def test_lemma2_m_is_matching(g):
    """Lemma 2: every M(i, j) is a matching."""
    for m in all_matchings(g).values():
        covered = set()
        for e in m:
            assert not (e.endpoints & covered), "M(i, j) is not a matching"
            covered |= e.endpoints


@settings(max_examples=40, deadline=None)
@given(g=port_graphs(max_nodes=10))
def test_matchings_union_covers_odd_degree_nodes(g):
    """Rephrasing of Lemmas 1-2 used by the algorithms: the union of all
    M(i, j) covers every node of odd degree."""
    union = set()
    for m in all_matchings(g).values():
        for e in m:
            union |= e.endpoints
    for v in g.nodes:
        if g.degree(v) % 2 == 1:
            assert v in union


@settings(max_examples=40, deadline=None)
@given(g=port_graphs(max_nodes=10))
def test_distinguishable_edge_is_min_port_unique(g):
    """The distinguishable edge minimises l(v, u) over unique label pairs."""
    for v in g.nodes:
        unique = uniquely_labelled_edges(g, v)
        chosen = distinguishable_edge(g, v)
        if not unique:
            assert chosen is None
        else:
            assert chosen == unique[0]
            assert chosen.port_at(v) == min(e.port_at(v) for e in unique)
