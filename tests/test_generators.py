"""Tests for the graph family generators."""

from __future__ import annotations

import pytest

from repro.exceptions import ConstructionError
from repro.generators import (
    caterpillar,
    circulant,
    complete,
    complete_bipartite,
    component_h_nx,
    crown,
    crown_nx,
    cycle,
    grid,
    hypercube,
    matching_union,
    path,
    petersen,
    random_bounded_degree,
    random_regular,
    random_tree,
    star,
    torus,
)


class TestRegularFamilies:
    def test_random_regular(self):
        g = random_regular(3, 10, seed=1)
        assert g.regularity() == 3
        assert g.num_nodes == 10

    def test_random_regular_rejects_impossible(self):
        with pytest.raises(ConstructionError):
            random_regular(3, 5)  # n*d odd
        with pytest.raises(ConstructionError):
            random_regular(5, 4)  # n <= d

    def test_cycle(self):
        g = cycle(7)
        assert g.regularity() == 2
        assert g.num_edges == 7
        with pytest.raises(ConstructionError):
            cycle(2)

    def test_complete(self):
        g = complete(5)
        assert g.regularity() == 4
        assert g.num_edges == 10

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 3)
        assert g.regularity() == 3
        irregular = complete_bipartite(2, 4)
        assert irregular.regularity() is None

    def test_circulant(self):
        g = circulant(8, (1, 2))
        assert g.regularity() == 4

    def test_hypercube(self):
        g = hypercube(3)
        assert g.regularity() == 3
        assert g.num_nodes == 8

    def test_torus(self):
        g = torus(3, 4)
        assert g.regularity() == 4
        assert g.num_nodes == 12

    def test_petersen(self):
        g = petersen()
        assert g.regularity() == 3
        assert g.num_nodes == 10

    def test_random_numbering_changes_ports(self):
        a = random_regular(3, 10, seed=5)
        b = random_regular(3, 10, seed=5)
        assert a == b  # deterministic given seed


class TestBoundedFamilies:
    def test_random_bounded_degree(self):
        g = random_bounded_degree(15, 4, seed=3)
        assert g.max_degree <= 4
        assert g.num_nodes == 15

    def test_path_and_star(self):
        assert path(5).max_degree == 2
        assert star(6).max_degree == 6
        assert star(6).num_edges == 6

    def test_grid(self):
        g = grid(3, 4)
        assert g.max_degree <= 4
        assert g.num_nodes == 12

    def test_random_tree(self):
        g = random_tree(12, seed=2)
        assert g.num_edges == 11
        single = random_tree(1)
        assert single.num_nodes == 1

    def test_caterpillar(self):
        g = caterpillar(4, 2)
        assert g.num_nodes == 4 + 8
        assert g.num_edges == 3 + 8


class TestSpecialFamilies:
    def test_crown(self):
        g = crown(4)
        assert g.regularity() == 3
        assert g.num_nodes == 8
        nx_g = crown_nx(3)
        assert nx_g.number_of_edges() == 6  # K33 minus matching

    def test_crown_rejects_small(self):
        with pytest.raises(ConstructionError):
            crown_nx(1)

    def test_matching_union(self):
        g = matching_union(4)
        assert g.regularity() == 1
        assert g.num_edges == 4

    def test_component_h(self):
        h = component_h_nx(2)
        assert h.number_of_nodes() == 9
        assert {d for _, d in h.degree()} == {4}
