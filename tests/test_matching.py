"""Tests for the matching substrate: properties, greedy, exact, bipartite,
and the Yannakakis-Gavril conversion."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AlgorithmContractError
from repro.matching import (
    brute_force_minimum_maximal_matching,
    covered_nodes,
    eds_to_maximal_matching,
    greedy_maximal_matching,
    has_path_of_length_three,
    is_edge_cover,
    is_forest,
    is_k_matching,
    is_matching,
    is_maximal_matching,
    is_star_forest,
    maximum_bipartite_matching,
    minimum_maximal_matching,
)
from repro.portgraph import from_networkx

from tests.conftest import port_graphs


def edges_by_pairs(graph, pairs):
    """Look up PortEdges of a simple port graph by node pairs."""
    index = {e.endpoints: e for e in graph.edges}
    return frozenset(index[frozenset(p)] for p in pairs)


class TestProperties:
    def test_empty_set_is_matching(self):
        assert is_matching([])
        assert is_k_matching([], 0)

    def test_path_matching(self):
        g = from_networkx(nx.path_graph(4))
        m = edges_by_pairs(g, [(0, 1), (2, 3)])
        assert is_matching(m)
        assert is_maximal_matching(g, m)

    def test_adjacent_edges_not_matching(self):
        g = from_networkx(nx.path_graph(3))
        both = frozenset(g.edges)
        assert not is_matching(both)
        assert is_k_matching(both, 2)

    def test_non_maximal_detected(self):
        g = from_networkx(nx.path_graph(4))
        m = edges_by_pairs(g, [(1, 2)])
        assert is_matching(m)
        assert is_maximal_matching(g, m)  # {1,2} dominates both others
        empty = frozenset()
        assert not is_maximal_matching(g, empty)

    def test_edge_cover(self):
        g = from_networkx(nx.path_graph(4))
        assert is_edge_cover(g, edges_by_pairs(g, [(0, 1), (2, 3)]))
        assert not is_edge_cover(g, edges_by_pairs(g, [(1, 2)]))

    def test_covered_nodes(self):
        g = from_networkx(nx.path_graph(3))
        m = edges_by_pairs(g, [(0, 1)])
        assert covered_nodes(m) == {0, 1}

    def test_forest_detection(self):
        tree = from_networkx(nx.balanced_tree(2, 2))
        assert is_forest(tree.edges)
        cycle = from_networkx(nx.cycle_graph(4))
        assert not is_forest(cycle.edges)

    def test_star_forest(self):
        star = from_networkx(nx.star_graph(4))
        assert is_star_forest(star.edges)
        path4 = from_networkx(nx.path_graph(5))  # path of length 4
        assert not is_star_forest(path4.edges)
        assert has_path_of_length_three(path4.edges)

    def test_two_disjoint_stars(self):
        g = from_networkx(nx.disjoint_union(nx.star_graph(3), nx.star_graph(2)))
        assert is_star_forest(g.edges)

    def test_path_of_length_three_detection(self):
        g = from_networkx(nx.path_graph(4))
        assert has_path_of_length_three(g.edges)
        g3 = from_networkx(nx.path_graph(3))
        assert not has_path_of_length_three(g3.edges)


class TestGreedy:
    def test_greedy_is_maximal(self):
        g = from_networkx(nx.petersen_graph())
        m = greedy_maximal_matching(g)
        assert is_maximal_matching(g, m)

    def test_respects_order(self):
        g = from_networkx(nx.path_graph(4))
        middle = edges_by_pairs(g, [(1, 2)])
        m = greedy_maximal_matching(g, order=list(middle))
        assert m == middle

    @settings(max_examples=40, deadline=None)
    @given(g=port_graphs(max_nodes=10))
    def test_greedy_always_maximal(self, g):
        m = greedy_maximal_matching(g)
        assert is_maximal_matching(g, m)


class TestExact:
    def test_star_minimum_is_one(self):
        g = from_networkx(nx.star_graph(5))
        assert len(minimum_maximal_matching(g)) == 1

    def test_path5_minimum(self):
        # P5 (4 edges): minimum maximal matching has size 2
        g = from_networkx(nx.path_graph(5))
        assert len(minimum_maximal_matching(g)) == 2

    def test_empty_graph(self):
        g = from_networkx(nx.empty_graph(3))
        assert minimum_maximal_matching(g) == frozenset()

    def test_complete_graph(self):
        g = from_networkx(nx.complete_graph(6))
        # K6: any maximal matching has 3 edges? No: a matching of size 2
        # covers 4 nodes and leaves an uncovered edge between the other 2,
        # so minimum maximal matching of K6 is 3... wait, 2 edges cover 4
        # nodes, remaining 2 nodes are adjacent -> not maximal.  Minimum
        # is 3 only if every pair of edges leaves an edge uncovered: yes.
        assert len(minimum_maximal_matching(g)) == 3

    def test_c7_known_value(self):
        # gamma'(C_n) = ceil(n/3); for n = 7 that is 3.
        g = from_networkx(nx.cycle_graph(7))
        assert len(minimum_maximal_matching(g)) == 3

    @settings(max_examples=30, deadline=None)
    @given(g=port_graphs(max_nodes=7))
    def test_agrees_with_brute_force(self, g):
        if g.num_edges > 12:
            return
        bb = minimum_maximal_matching(g)
        bf = brute_force_minimum_maximal_matching(g)
        assert len(bb) == len(bf)
        assert is_maximal_matching(g, bb)


class TestHopcroftKarp:
    def test_perfect_on_even_cycle(self):
        adjacency = {f"l{i}": [f"r{i}", f"r{(i + 1) % 4}"] for i in range(4)}
        m = maximum_bipartite_matching(adjacency)
        assert len(m) == 4

    def test_empty(self):
        assert maximum_bipartite_matching({}) == {}
        assert maximum_bipartite_matching({"l": []}) == {}

    def test_star_side(self):
        adjacency = {f"l{i}": ["r0"] for i in range(3)}
        assert len(maximum_bipartite_matching(adjacency)) == 1

    @settings(max_examples=40, deadline=None)
    @given(
        n_left=st.integers(1, 8),
        n_right=st.integers(1, 8),
        seed=st.integers(0, 10**6),
        p=st.floats(0.1, 0.9),
    )
    def test_matches_networkx_cardinality(self, n_left, n_right, seed, p):
        graph = nx.bipartite.random_graph(n_left, n_right, p, seed=seed)
        left = [v for v, d in graph.nodes(data=True) if d["bipartite"] == 0]
        adjacency = {v: sorted(graph.neighbors(v)) for v in left}
        ours = maximum_bipartite_matching(adjacency)
        theirs = nx.bipartite.maximum_matching(graph, top_nodes=left)
        assert len(ours) == len(theirs) // 2
        # validity
        assert len(set(ours.values())) == len(ours)
        for u, r in ours.items():
            assert graph.has_edge(u, r)


class TestConversion:
    def test_rejects_non_eds(self):
        g = from_networkx(nx.path_graph(5))
        with pytest.raises(AlgorithmContractError):
            eds_to_maximal_matching(g, frozenset())

    def test_identity_on_maximal_matching(self):
        g = from_networkx(nx.path_graph(4))
        m = edges_by_pairs(g, [(0, 1), (2, 3)])
        assert eds_to_maximal_matching(g, m) == m

    def test_star_eds_compresses(self):
        g = from_networkx(nx.star_graph(4))
        all_edges = frozenset(g.edges)  # a (bad) EDS of size 4
        m = eds_to_maximal_matching(g, all_edges)
        assert len(m) == 1
        assert is_maximal_matching(g, m)

    @settings(max_examples=40, deadline=None)
    @given(g=port_graphs(max_nodes=9))
    def test_conversion_never_grows(self, g):
        """Yannakakis-Gavril: maximal matching with at most |D| edges."""
        d = frozenset(g.edges)  # the full edge set is always an EDS
        if not d:
            return
        m = eds_to_maximal_matching(g, d)
        assert is_maximal_matching(g, m)
        assert len(m) <= len(d)

    @settings(max_examples=30, deadline=None)
    @given(g=port_graphs(max_nodes=8))
    def test_conversion_from_greedy_cover(self, g):
        """Convert an EDS built from an edge cover-ish greedy set."""
        if g.num_edges == 0:
            return
        # build some EDS: one incident edge per node
        d = frozenset(
            g.edge_at(v, 1) for v in g.nodes if g.degree(v) >= 1
        )
        m = eds_to_maximal_matching(g, d)
        assert is_maximal_matching(g, m)
        assert len(m) <= len(d)
