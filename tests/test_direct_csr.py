"""Differential tests for the direct-to-CSR construction path.

The structured families (`cycle`, `complete`, `complete_bipartite`,
`hypercube`, `torus`, `path`, `grid`) build compiled arrays directly
when no explicit numbering is requested.  That fast path must be
**byte-identical** to the historical networkx route: same node order,
same port assignment, same canonical edge order, same compiled arrays,
same cache keys and record bytes.  These tests pin that contract, plus
the :class:`~repro.portgraph.arrays.ArrayGraph` validation and
degenerate-input behaviour the fast path depends on.
"""

from __future__ import annotations

import pickle
from array import array

import pytest

import repro.registry.builtins  # noqa: F401  (populate the registry)
from repro.engine.cache import cache_key
from repro.engine.executor import execute_unit
from repro.engine.spec import GraphSpec, JobSpec
from repro.exceptions import (
    ConstructionError,
    InvolutionError,
    PortNumberingError,
)
from repro.generators.bounded import grid, path
from repro.generators.regular import (
    complete,
    complete_bipartite,
    cycle,
    hypercube,
    torus,
)
from repro.portgraph.arrays import ArrayGraph
from repro.portgraph.compiled import CompiledGraph
from repro.portgraph.numbering import random_numbering, sequential_numbering

#: (family callable, positional args) — every direct-path builder.
FAMILIES = [
    ("cycle", cycle, (3,)),
    ("cycle", cycle, (9,)),
    ("cycle", cycle, (12,)),
    ("complete", complete, (2,)),
    ("complete", complete, (7,)),
    ("complete_bipartite", complete_bipartite, (1, 1)),
    ("complete_bipartite", complete_bipartite, (3, 5)),
    ("hypercube", hypercube, (1,)),
    ("hypercube", hypercube, (4,)),
    ("torus", torus, (3, 3)),
    ("torus", torus, (3, 5)),
    ("path", path, (1,)),
    ("path", path, (2,)),
    ("path", path, (11,)),
    ("grid", grid, (0, 3)),
    ("grid", grid, (1, 4)),
    ("grid", grid, (3, 4)),
]

SEEDS = [None, 0, 7, 12345]


def nx_forced(build, args, seed):
    """The same family through the historical networkx route."""
    numbering = (
        sequential_numbering if seed is None else random_numbering(seed)
    )
    return build(*args, seed=seed, numbering=numbering)


def assert_graphs_byte_identical(direct, reference, context: str):
    # Model-level identity: nodes, degrees, involution, canonical edges.
    assert tuple(direct.nodes) == tuple(reference.nodes), context
    assert dict(direct.degrees) == dict(reference.degrees), context
    assert dict(direct.involution) == dict(reference.involution), context
    assert direct.edges == reference.edges, context
    assert direct == reference and hash(direct) == hash(reference), context
    # Compiled-array identity: the CSR lowering must match byte for byte.
    dc, rc = direct.compiled(), reference.compiled()
    assert dc.nodes == rc.nodes, context
    assert dc.offsets.tobytes() == rc.offsets.tobytes(), context
    assert dc.mate.tobytes() == rc.mate.tobytes(), context
    assert dc.port_node.tobytes() == rc.port_node.tobytes(), context


class TestStructuredFamilyByteIdentity:
    @pytest.mark.parametrize(
        "name,build,args",
        FAMILIES,
        ids=[f"{n}{a}" for n, _, a in FAMILIES],
    )
    def test_direct_matches_networkx(self, name, build, args):
        for seed in SEEDS:
            direct = build(*args, seed=seed)
            assert isinstance(direct, ArrayGraph), (
                f"{name}{args} seed={seed}: direct path did not engage"
            )
            reference = nx_forced(build, args, seed)
            assert not isinstance(reference, ArrayGraph)
            assert_graphs_byte_identical(
                direct, reference, f"{name}{args} seed={seed}"
            )

    def test_derived_properties_match(self):
        for build, args in [(torus, (3, 4)), (grid, (2, 5)), (cycle, (6,))]:
            direct = build(*args, seed=3)
            reference = nx_forced(build, args, 3)
            assert direct.num_nodes == reference.num_nodes
            assert direct.num_edges == reference.num_edges
            assert direct.max_degree == reference.max_degree
            assert direct.regularity() == reference.regularity()
            assert direct.is_simple() == reference.is_simple()
            for node in direct.nodes:
                assert direct.ports(node) == reference.ports(node)
                assert direct.edges_at(node) == reference.edges_at(node)
                for port in direct.ports(node):
                    assert direct.connection(node, port) == (
                        reference.connection(node, port)
                    )

    def test_construction_errors_unchanged(self):
        with pytest.raises(ConstructionError):
            cycle(2)
        with pytest.raises(ConstructionError):
            complete(1)
        with pytest.raises(ConstructionError):
            complete_bipartite(0, 3)
        with pytest.raises(ConstructionError):
            torus(2, 5)
        with pytest.raises(ConstructionError):
            path(0)

    def test_pickle_round_trip(self):
        direct = torus(3, 5, seed=9)
        clone = pickle.loads(pickle.dumps(direct))
        assert isinstance(clone, ArrayGraph)
        assert_graphs_byte_identical(clone, direct, "pickle round trip")
        assert clone == nx_forced(torus, (3, 5), 9)


class TestRecordAndKeyParity:
    """Registry-built units reproduce the networkx-era record bytes."""

    SPECS = [
        JobSpec(
            algorithm="port_one",
            graph=GraphSpec.make("cycle", seed=3, n=9),
            measure="quality", optimum="auto", label="",
        ),
        JobSpec(
            algorithm="bounded_degree",
            graph=GraphSpec.make("grid", seed=None, rows=3, cols=4),
            measure="quality", optimum="auto", label="",
        ),
        JobSpec(
            algorithm="bounded_degree",
            graph=GraphSpec.make("torus", seed=11, rows=3, cols=3),
            measure="quality", optimum="auto", label="",
        ),
    ]

    def _nx_record(self, spec, monkeypatch):
        import repro.registry.builtins as builtins_mod

        forced = {
            "cycle": lambda n, *, seed=None: nx_forced(cycle, (n,), seed),
            "grid": lambda r, c, *, seed=None: nx_forced(grid, (r, c), seed),
            "torus": lambda r, c, *, seed=None: nx_forced(
                torus, (r, c), seed
            ),
        }
        name = spec.graph.family
        monkeypatch.setattr(builtins_mod, name, forced[name])
        return execute_unit(spec)

    @pytest.mark.parametrize("index", range(3))
    def test_records_byte_identical(self, index, monkeypatch):
        spec = self.SPECS[index]
        direct_record = execute_unit(spec)
        nx_record = self._nx_record(spec, monkeypatch)
        assert direct_record.to_json_dict() == nx_record.to_json_dict()
        assert cache_key(spec) == direct_record.key == nx_record.key


class TestArrayGraphValidation:
    def arrays_for(self, graph):
        c = graph.compiled()
        return (
            tuple(c.nodes),
            tuple(c.graph.degrees[v] for v in c.nodes),
            array("q", c.offsets),
            array("q", c.mate),
            array("q", c.port_node),
        )

    def test_validate_accepts_well_formed(self):
        nodes, degrees, offsets, mate, port_node = self.arrays_for(cycle(5))
        rebuilt = ArrayGraph(nodes, degrees, offsets, mate, port_node)
        assert rebuilt == cycle(5)

    def test_rejects_broken_involution(self):
        nodes, degrees, offsets, mate, port_node = self.arrays_for(cycle(5))
        mate[0] = 0 if mate[0] != 0 else 1
        mate_is_fixed_or_paired = mate[mate[0]] == 0
        if mate_is_fixed_or_paired:
            mate[1] = 1  # break pairing elsewhere
        with pytest.raises(InvolutionError):
            ArrayGraph(nodes, degrees, offsets, mate, port_node)

    def test_rejects_mate_out_of_range(self):
        nodes, degrees, offsets, mate, port_node = self.arrays_for(cycle(5))
        mate[3] = len(mate) + 5
        with pytest.raises(InvolutionError):
            ArrayGraph(nodes, degrees, offsets, mate, port_node)

    def test_rejects_inconsistent_offsets(self):
        nodes, degrees, offsets, mate, port_node = self.arrays_for(cycle(5))
        offsets[2] += 1
        with pytest.raises(PortNumberingError):
            ArrayGraph(nodes, degrees, offsets, mate, port_node)

    def test_rejects_duplicate_nodes(self):
        nodes, degrees, offsets, mate, port_node = self.arrays_for(cycle(5))
        with pytest.raises(PortNumberingError):
            ArrayGraph(
                (nodes[0],) + nodes[1:-1] + (nodes[0],),
                degrees, offsets, mate, port_node,
            )

    def test_rejects_wrong_port_owner(self):
        nodes, degrees, offsets, mate, port_node = self.arrays_for(cycle(5))
        port_node[0] = 1
        with pytest.raises(PortNumberingError):
            ArrayGraph(nodes, degrees, offsets, mate, port_node)


class TestArrayGraphDegenerate:
    def test_empty_graph(self):
        empty = ArrayGraph((), (), array("q", [0]), array("q"), array("q"))
        assert empty.num_nodes == 0
        assert empty.num_edges == 0
        assert empty.edges == ()
        assert empty == grid(0, 3)

    def test_single_isolated_node(self):
        lone = ArrayGraph((0,), (0,), array("q", [0, 0]),
                          array("q"), array("q"))
        assert lone.num_edges == 0
        assert lone.degree(0) == 0
        assert lone == path(1)

    def test_directed_loop_fixed_point(self):
        # One node, one port, mate[0] == 0: a directed self-loop — a
        # legal port-numbered graph that no generator emits but the
        # array layer must model (orbit of size one = one edge).
        loop = ArrayGraph((5,), (1,), array("q", [0, 1]),
                          array("q", [0]), array("q", [0]))
        assert loop.num_edges == 1
        assert not loop.is_simple()
        (edge,) = loop.edges
        assert edge.endpoints == frozenset({5})
        assert loop.connection(5, 1) == (5, 1)

    def test_two_node_multigraph(self):
        # Double edge between two nodes: valid arrays, not simple.
        double = ArrayGraph(
            (0, 1), (2, 2), array("q", [0, 2, 4]),
            array("q", [2, 3, 0, 1]), array("q", [0, 0, 1, 1]),
        )
        assert double.num_edges == 2
        assert not double.is_simple()

    def test_from_arrays_skips_flat_list_seeding(self):
        compiled = cycle(6).compiled()
        assert isinstance(compiled, CompiledGraph)
        assert "flat_lists" not in compiled.memo
        mate, port_node = compiled.flat_lists()
        assert mate == list(compiled.mate)
        assert port_node == list(compiled.port_node)
