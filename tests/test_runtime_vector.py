"""The numpy vector engine: selection, fallback, and degradation.

Observational identity with the compiled engine is enforced by the
differential matrix in ``test_runtime_compiled.py`` (which includes
``vector`` whenever numpy is installed).  This module covers what the
matrix cannot: the engine-selection contract — ``auto`` degrading
silently, explicit ``vector`` raising without numpy, the one-time
fallback notice for algorithms without a vector kernel — plus the
vector-specific plumbing (memoised :class:`VectorGraph` views, lazy
trace slabs, telemetry annotations).  Everything here runs (or
explicitly skips) on the no-numpy CI job too.
"""

from __future__ import annotations

import logging

import pytest

from repro.algorithms.maximal_matching_ids import GreedyMaximalMatchingIds
from repro.exceptions import SimulationError
from repro.portgraph import PortGraphBuilder
from repro.registry.families import get_family
from repro.runtime import (
    NodeProgram,
    engines_available,
    run_anonymous,
    run_identified,
    use_engine,
    vector_available,
)
from repro.runtime import scheduler as scheduler_module

needs_numpy = pytest.mark.skipif(
    not vector_available(), reason="numpy not installed"
)


def small_regular():
    return get_family("regular").make({"d": 3, "n": 10}, 7)


class _NoVectorKernel(NodeProgram):
    """A per-node program with no batch or vector opt-in."""

    def send(self, rnd):
        return {}

    def receive(self, rnd, inbox):
        self.halt()


@pytest.fixture
def clear_fallback_notices():
    scheduler_module._vector_fallback_seen.clear()
    yield
    scheduler_module._vector_fallback_seen.clear()


class TestEnginesAvailable:
    def test_reports_every_engine(self):
        avail = engines_available()
        assert set(avail) == {
            "compiled", "vector", "auto", "pernode", "legacy"
        }
        assert all(avail[name] for name in avail if name != "vector")

    def test_vector_availability_matches_probe(self):
        assert engines_available()["vector"] == vector_available()


class TestSelectionContract:
    @needs_numpy
    def test_explicit_vector_runs_vector(self):
        from repro.algorithms.port_one import PortOneEDS
        from repro.obs import recording

        with recording() as rec:
            run_anonymous(small_regular(), PortOneEDS, engine="vector")
        assert rec.counters.get("runtime.vector.runs") == 1

    @needs_numpy
    def test_auto_prefers_vector(self):
        from repro.algorithms.port_one import PortOneEDS
        from repro.obs import recording

        with recording() as rec:
            with use_engine("auto"):
                run_anonymous(small_regular(), PortOneEDS)
        assert rec.counters.get("runtime.vector.runs") == 1

    def test_auto_without_kernel_runs_compiled(self):
        from repro.obs import recording

        with recording() as rec:
            result = run_anonymous(
                small_regular(), _NoVectorKernel, engine="auto"
            )
        assert result.rounds == 1
        assert "runtime.vector.runs" not in rec.counters

    def test_fallback_notice_logged_once(self, caplog,
                                         clear_fallback_notices):
        """Explicit ``vector`` without a vector kernel degrades to the
        compiled engine with a single logged notice per algorithm."""
        if not vector_available():
            pytest.skip("numpy not installed")
        with caplog.at_level(logging.INFO, logger="repro.runtime.scheduler"):
            run_anonymous(small_regular(), _NoVectorKernel, engine="vector")
            run_anonymous(small_regular(), _NoVectorKernel, engine="vector")
        notices = [
            rec for rec in caplog.records
            if "falls back to the compiled engine" in rec.getMessage()
        ]
        assert len(notices) == 1

    def test_auto_fallback_is_silent(self, caplog, clear_fallback_notices):
        with caplog.at_level(logging.INFO, logger="repro.runtime.scheduler"):
            run_anonymous(small_regular(), _NoVectorKernel, engine="auto")
        assert not [
            rec for rec in caplog.records
            if "falls back" in rec.getMessage()
        ]


class TestWithoutNumpy:
    """The degradation paths, exercised by faking numpy's absence."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        import repro.portgraph.vector as pv

        monkeypatch.setattr(pv, "np", None)
        yield

    def test_explicit_vector_raises_actionable_error(self, no_numpy):
        from repro.algorithms.port_one import PortOneEDS

        with pytest.raises(SimulationError, match=r"repro-eds\[vector\]"):
            run_anonymous(small_regular(), PortOneEDS, engine="vector")

    def test_auto_falls_back_silently(self, no_numpy, caplog):
        from repro.algorithms.port_one import PortOneEDS

        assert not vector_available()
        with caplog.at_level(logging.INFO, logger="repro.runtime.scheduler"):
            result = run_anonymous(
                small_regular(), PortOneEDS, engine="auto",
            )
        assert result.rounds == 1
        assert not caplog.records

    def test_engines_available_reports_missing(self, no_numpy):
        assert engines_available()["vector"] is False

    def test_identified_explicit_vector_raises(self, no_numpy):
        graph = get_family("regular").make({"d": 3, "n": 8}, 7)
        with pytest.raises(SimulationError, match="requires numpy"):
            run_identified(
                graph, GreedyMaximalMatchingIds, engine="vector"
            )


@needs_numpy
class TestVectorGraphView:
    def test_memoised_on_compiled_graph(self):
        graph = small_regular()
        cg = graph.compiled()
        assert cg.vector() is cg.vector()
        assert cg.memo["vector_graph"] is cg.vector()

    def test_csr_views_match_flat_arrays(self):
        import numpy as np

        graph = small_regular()
        cg = graph.compiled()
        vg = cg.vector()
        assert vg.num_nodes == len(cg.nodes)
        assert list(vg.mate) == list(cg.mate)
        assert list(vg.port_node) == list(cg.port_node)
        # local/peer round-trip through the involution
        assert np.array_equal(vg.mate[vg.mate], vg.all_ports)
        assert np.array_equal(vg.peer_local[vg.mate], vg.local)

    def test_segment_min_empty_segments(self):
        import numpy as np

        builder = PortGraphBuilder()
        builder.add_nodes({"u": 1, "v": 1, "w": 0})
        builder.connect("u", 1, "v", 1)
        vg = builder.build().compiled().vector()
        values = np.array([5, 3], dtype=np.int64)
        out = vg.segment_min(values, empty=99)
        assert list(out) == [5, 3, 99]


@needs_numpy
class TestLazyTraces:
    def test_trace_only_materialised_on_request(self):
        """Without ``record_trace`` the vector run keeps no slabs."""
        from repro.algorithms.regular_odd import RegularOddEDS

        graph = small_regular()
        vec = RegularOddEDS.vector_program(graph)
        rnd = 0
        while vec.num_running:
            vec.step_all(rnd)
            rnd += 1
        assert vec._slabs == []
        assert vec._halted_log == []

    def test_slabs_expand_to_compiled_trace(self):
        from repro.algorithms.regular_odd import RegularOddEDS

        graph = small_regular()
        compiled = run_anonymous(
            graph, RegularOddEDS, engine="compiled", record_trace=True
        )
        vector = run_anonymous(
            graph, RegularOddEDS, engine="vector", record_trace=True
        )
        assert vector.trace == compiled.trace


@needs_numpy
class TestIdOverflow:
    def test_oversized_ids_fall_back(self):
        """Identifiers beyond int64 cannot enter the id arrays; the
        hook declines and the run degrades to the compiled engine."""
        graph = get_family("regular").make({"d": 3, "n": 8}, 7)
        huge = {v: 2 ** 70 + i for i, v in enumerate(graph.nodes)}
        assert GreedyMaximalMatchingIds.vector_program(graph, huge) is None
        with_ids = run_identified(
            graph, GreedyMaximalMatchingIds, ids=huge, engine="auto"
        )
        reference = run_identified(
            graph, GreedyMaximalMatchingIds, ids=huge, engine="compiled"
        )
        assert with_ids.outputs == reference.outputs
        assert with_ids.rounds == reference.rounds
