"""Tests for the factorisation substrate: Euler circuits, Petersen
2-factorisation, and König 1-factorisation."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FactorizationError
from repro.factorization import (
    MultiEdge,
    eulerian_circuits,
    is_one_factor,
    is_two_factor,
    one_factorise_bipartite_nx,
    orient_along_euler,
    two_factorise,
    two_factorise_nx,
)


def nx_edges(graph: nx.Graph) -> list[MultiEdge]:
    return [MultiEdge(u, v, (min(u, v), max(u, v))) for u, v in graph.edges()]


class TestEuler:
    def test_triangle_circuit(self):
        g = nx.cycle_graph(3)
        circuits = eulerian_circuits(g.nodes, nx_edges(g))
        assert len(circuits) == 1
        circuit = circuits[0]
        assert len(circuit) == 3
        # closed walk
        assert circuit[0].tail == circuit[-1].head
        for a, b in zip(circuit, circuit[1:]):
            assert a.head == b.tail

    def test_odd_degree_rejected(self):
        g = nx.path_graph(3)
        with pytest.raises(FactorizationError):
            eulerian_circuits(g.nodes, nx_edges(g))

    def test_two_components_two_circuits(self):
        g = nx.disjoint_union(nx.cycle_graph(3), nx.cycle_graph(4))
        circuits = eulerian_circuits(g.nodes, nx_edges(g))
        assert len(circuits) == 2
        assert sum(len(c) for c in circuits) == 7

    def test_loops_handled(self):
        edges = [MultiEdge("v", "v", "loop1"), MultiEdge("v", "v", "loop2")]
        circuits = eulerian_circuits(["v"], edges)
        assert sum(len(c) for c in circuits) == 2

    def test_parallel_edges_handled(self):
        edges = [MultiEdge("u", "v", 1), MultiEdge("u", "v", 2)]
        circuits = eulerian_circuits(["u", "v"], edges)
        assert len(circuits) == 1
        assert len(circuits[0]) == 2

    def test_unknown_node_rejected(self):
        with pytest.raises(FactorizationError):
            eulerian_circuits(["u"], [MultiEdge("u", "ghost", 0)])

    def test_orientation_balances_degrees(self):
        g = nx.random_regular_graph(4, 9, seed=3)
        arcs = orient_along_euler(g.nodes, nx_edges(g))
        out = {v: 0 for v in g.nodes}
        inn = {v: 0 for v in g.nodes}
        for arc in arcs:
            out[arc.tail] += 1
            inn[arc.head] += 1
        assert all(out[v] == 2 and inn[v] == 2 for v in g.nodes)

    def test_isolated_nodes_ok(self):
        circuits = eulerian_circuits(["u", "v"], [])
        assert circuits == []


class TestTwoFactorisation:
    def test_rejects_odd_degree(self):
        g = nx.complete_graph(4)  # 3-regular
        with pytest.raises(FactorizationError):
            two_factorise_nx(g)

    def test_rejects_irregular(self):
        with pytest.raises(FactorizationError):
            two_factorise_nx(nx.path_graph(4))

    def test_rejects_directed(self):
        with pytest.raises(FactorizationError):
            two_factorise_nx(nx.DiGraph([(0, 1)]))

    def test_cycle_is_its_own_factor(self):
        g = nx.cycle_graph(5)
        factors = two_factorise_nx(g)
        assert len(factors) == 1
        assert is_two_factor(factors[0], g.nodes)
        assert len(factors[0].cycles()) == 1

    def test_k4_complete_even(self):
        g = nx.complete_graph(5)  # 4-regular
        factors = two_factorise_nx(g)
        assert len(factors) == 2
        keys = set()
        for f in factors:
            assert is_two_factor(f, g.nodes)
            assert not (f.edge_keys() & keys), "factors must be edge-disjoint"
            keys |= f.edge_keys()
        assert len(keys) == g.number_of_edges()

    def test_zero_regular(self):
        factors = two_factorise(["u", "v"], [])
        assert factors == []

    def test_multigraph_with_loops(self):
        # A single node with two loops is 4-regular.
        edges = [MultiEdge("v", "v", "a"), MultiEdge("v", "v", "b")]
        factors = two_factorise(["v"], edges)
        assert len(factors) == 2
        for f in factors:
            assert is_two_factor(f, ["v"], edges)

    def test_parallel_edge_multigraph(self):
        g = nx.MultiGraph()
        g.add_edge("u", "v")
        g.add_edge("u", "v")
        factors = two_factorise_nx(g)
        assert len(factors) == 1
        assert is_two_factor(factors[0], ["u", "v"])

    def test_cycles_method(self):
        g = nx.disjoint_union(nx.cycle_graph(3), nx.cycle_graph(5))
        factors = two_factorise_nx(g)
        assert len(factors) == 1
        cycles = factors[0].cycles()
        assert sorted(len(c) for c in cycles) == [3, 5]


class TestOneFactorisation:
    def test_complete_bipartite(self):
        g = nx.complete_bipartite_graph(4, 4)
        factors = one_factorise_bipartite_nx(g)
        assert len(factors) == 4
        seen = set()
        for f in factors:
            assert is_one_factor(f, g.nodes)
            for e in f:
                assert e.key not in seen
                seen.add(e.key)
        assert len(seen) == 16

    def test_even_cycle(self):
        g = nx.cycle_graph(8)
        factors = one_factorise_bipartite_nx(g)
        assert len(factors) == 2
        for f in factors:
            assert is_one_factor(f, g.nodes)

    def test_rejects_non_bipartite(self):
        with pytest.raises(FactorizationError):
            one_factorise_bipartite_nx(nx.cycle_graph(5))

    def test_rejects_irregular(self):
        with pytest.raises(FactorizationError):
            one_factorise_bipartite_nx(nx.path_graph(4))


@settings(max_examples=25, deadline=None)
@given(
    d=st.sampled_from([2, 4, 6]),
    n=st.integers(7, 13),
    seed=st.integers(0, 10**6),
)
def test_petersen_theorem_on_random_regular(d, n, seed):
    """Petersen: every 2k-regular graph splits into k 2-factors."""
    graph = nx.random_regular_graph(d, n, seed=seed)
    edges = nx_edges(graph)
    factors = two_factorise(graph.nodes, edges)
    assert len(factors) == d // 2
    keys: set = set()
    for f in factors:
        assert is_two_factor(f, graph.nodes, edges)
        assert not (f.edge_keys() & keys)
        keys |= f.edge_keys()
    assert len(keys) == graph.number_of_edges()


@settings(max_examples=25, deadline=None)
@given(
    left=st.integers(2, 6),
    d=st.integers(1, 4),
    seed=st.integers(0, 10**6),
)
def test_koenig_on_random_regular_bipartite(left, d, seed):
    """König: every d-regular bipartite graph is a union of d matchings."""
    if d > left:
        d = left
    graph = nx.bipartite.configuration_model(
        [d] * left, [d] * left, seed=seed, create_using=nx.MultiGraph
    )
    factors = one_factorise_bipartite_nx(graph)
    assert len(factors) == d
    for f in factors:
        assert is_one_factor(f, graph.nodes)
