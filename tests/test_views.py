"""Tests for truncated views and their relationships to refinement,
covering maps, and algorithm outputs."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import PortOneEDS, RegularOddEDS
from repro.portgraph import from_networkx, random_lift, random_numbering
from repro.portgraph.numbering import factor_pairing_numbering
from repro.portgraph.refinement import stable_partition
from repro.portgraph.views import view, view_partition, views_at_depth
from repro.runtime import run_anonymous

from tests.conftest import port_graphs


class TestViewBasics:
    def test_depth_zero_is_degree(self):
        g = from_networkx(nx.path_graph(3))
        assert view(g, 0, 0) == (1, ())
        assert view(g, 1, 0) == (2, ())

    def test_negative_depth_rejected(self):
        g = from_networkx(nx.path_graph(2))
        with pytest.raises(ValueError):
            view(g, 0, -1)

    def test_recursive_agrees_with_interned(self):
        """Explicit trees and interned ids induce the same equalities."""
        g = from_networkx(nx.petersen_graph(), random_numbering(3))
        for depth in (0, 1, 2, 3):
            bulk = views_at_depth(g, depth)
            explicit = {v: view(g, v, depth) for v in g.nodes}
            for v in g.nodes:
                for u in g.nodes:
                    assert (bulk[v] == bulk[u]) == (
                        explicit[v] == explicit[u]
                    )

    def test_symmetric_cycle_views_identical(self):
        g = from_networkx(nx.cycle_graph(7), factor_pairing_numbering)
        for depth in (1, 3, 7):
            assert len(set(views_at_depth(g, depth).values())) == 1

    def test_path_end_vs_middle_distinguished(self):
        g = from_networkx(nx.path_graph(4))
        partition = view_partition(g, 1)
        assert partition[0] != partition[1]


class TestViewsVsRefinement:
    @settings(max_examples=30, deadline=None)
    @given(g=port_graphs(max_nodes=8))
    def test_deep_views_equal_stable_partition(self, g):
        """Views stabilise to exactly the refinement partition."""
        depth = max(g.num_nodes, 1)
        by_views = view_partition(g, depth)
        by_refinement = stable_partition(g)
        blocks_views = {}
        blocks_refinement = {}
        for v in g.nodes:
            blocks_views.setdefault(by_views[v], set()).add(v)
            blocks_refinement.setdefault(by_refinement[v], set()).add(v)
        assert sorted(map(sorted, blocks_views.values())) == sorted(
            map(sorted, blocks_refinement.values())
        )

    @settings(max_examples=25, deadline=None)
    @given(g=port_graphs(max_nodes=7), depth=st.integers(0, 3))
    def test_views_refine_monotonically(self, g, depth):
        """Deeper views can only split blocks, never merge them."""
        coarse = view_partition(g, depth)
        fine = view_partition(g, depth + 1)
        for v in g.nodes:
            for u in g.nodes:
                if fine[v] == fine[u]:
                    assert coarse[v] == coarse[u]


class TestViewsVsCoverings:
    @settings(max_examples=20, deadline=None)
    @given(g=port_graphs(max_nodes=6), fold=st.integers(2, 3),
           seed=st.integers(0, 10**6), depth=st.integers(0, 3))
    def test_covering_preserves_views(self, g, fold, seed, depth):
        from repro.portgraph.views import ViewInterner

        lift, f = random_lift(g, fold, seed=seed)
        shared = ViewInterner()
        base_views = views_at_depth(g, depth, interner=shared)
        lift_views = views_at_depth(lift, depth, interner=shared)
        for v in lift.nodes:
            assert lift_views[v] == base_views[f[v]]


class TestViewsVsOutputs:
    @settings(max_examples=25, deadline=None)
    @given(g=port_graphs(max_nodes=8))
    def test_equal_views_equal_outputs_port_one(self, g):
        """PortOne runs in 1 round: depth-1 views determine outputs."""
        result = run_anonymous(g, PortOneEDS)
        views = views_at_depth(g, 1)
        by_view = {}
        for v in g.nodes:
            by_view.setdefault(views[v], set()).add(result.outputs[v])
        assert all(len(outs) == 1 for outs in by_view.values())

    def test_equal_views_equal_outputs_regular_odd(self):
        g = from_networkx(
            nx.random_regular_graph(3, 12, seed=4), random_numbering(4)
        )
        result = run_anonymous(g, RegularOddEDS)
        depth = result.rounds
        views = views_at_depth(g, depth)
        by_view = {}
        for v in g.nodes:
            by_view.setdefault(views[v], set()).add(result.outputs[v])
        assert all(len(outs) == 1 for outs in by_view.values())
