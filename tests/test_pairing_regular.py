"""Tests for the streaming pairing-model d-regular generator.

`pairing_regular` builds compiled arrays in O(nd) without networkx.  Its
contract: exact d-regularity, simplicity after switch-repair,
determinism as a pure function of ``(d, n, seed)``, and — critically for
the shared result cache — **byte-identical output with and without
numpy** (numpy only accelerates assembly and bad-edge detection; the
coins and the repair sequence are pure-python either way).
"""

from __future__ import annotations

import pytest

import repro.generators.pairing as pairing_mod
from repro.engine.executor import execute_unit
from repro.engine.spec import GraphSpec, JobSpec
from repro.exceptions import ConstructionError
from repro.generators.pairing import pairing_regular
from repro.portgraph.arrays import ArrayGraph
from repro.registry.families import get_family


def compiled_bytes(graph):
    c = graph.compiled()
    return (
        c.offsets.tobytes(), c.mate.tobytes(), c.port_node.tobytes()
    )


class TestStructure:
    @pytest.mark.parametrize("d,n", [
        (1, 2), (1, 8), (2, 3), (2, 16), (3, 4), (3, 20),
        (4, 9), (4, 50), (8, 30), (7, 8),
    ])
    def test_simple_d_regular(self, d, n):
        graph = pairing_regular(d, n, seed=5)
        assert isinstance(graph, ArrayGraph)
        assert graph.nodes == tuple(range(n))
        assert graph.regularity() == d
        assert graph.is_simple()
        assert graph.num_edges == n * d // 2

    def test_smallest_feasible_is_complete(self):
        # d=3, n=4: K4 is the unique simple 3-regular graph on 4 nodes,
        # so the switch-repair must land on it from any pairing.
        for seed in range(10):
            graph = pairing_regular(3, 4, seed=seed)
            assert graph.is_simple()
            assert {frozenset(e.endpoints) for e in graph.edges} == {
                frozenset({a, b})
                for a in range(4) for b in range(a + 1, 4)
            }

    @pytest.mark.parametrize("d,n", [(0, 4), (-1, 4), (3, 3), (3, 2),
                                     (3, 5), (5, 7)])
    def test_infeasible_raises(self, d, n):
        with pytest.raises(ConstructionError):
            pairing_regular(d, n, seed=0)


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        a = pairing_regular(4, 60, seed=123)
        b = pairing_regular(4, 60, seed=123)
        assert compiled_bytes(a) == compiled_bytes(b)
        assert a == b and hash(a) == hash(b)

    def test_different_seeds_differ(self):
        a = pairing_regular(4, 60, seed=1)
        b = pairing_regular(4, 60, seed=2)
        assert compiled_bytes(a) != compiled_bytes(b)

    @pytest.mark.parametrize("d,n", [(2, 12), (3, 14), (4, 25), (8, 40)])
    def test_numpy_and_fallback_agree(self, d, n, monkeypatch):
        """The cache contract: workers with and without numpy must emit
        the same graph for the same spec, byte for byte."""
        with_numpy = [
            compiled_bytes(pairing_regular(d, n, seed=s)) for s in range(6)
        ]
        monkeypatch.setattr(pairing_mod, "_np", None)
        without = [
            compiled_bytes(pairing_regular(d, n, seed=s)) for s in range(6)
        ]
        assert with_numpy == without

    def test_fallback_builds_valid_graph(self, monkeypatch):
        monkeypatch.setattr(pairing_mod, "_np", None)
        graph = pairing_regular(3, 10, seed=9)
        assert graph.regularity() == 3
        assert graph.is_simple()


class TestEngineIntegration:
    def test_registry_family(self):
        graph = get_family("pairing_regular").make({"d": 3, "n": 12}, 4)
        assert graph == pairing_regular(3, 12, seed=4)

    def test_unit_executes_feasibly(self):
        record = execute_unit(JobSpec(
            algorithm="bounded_degree",
            graph=GraphSpec.make("pairing_regular", seed=2, d=3, n=24),
            measure="quality", optimum="dual_bound", label="",
        ))
        assert record.num_nodes == 24
        assert record.num_edges == 36
        assert record.max_degree == 3
        assert record.solution_size > 0
        # dual_bound units certify a two-sided optimum bracket.
        assert record.optimum_lower <= record.optimum_upper
        assert record.solution_size >= record.optimum_lower

    def test_grid_expansion_labels(self):
        from repro.engine.scenarios import get_scenario

        grid = get_scenario("huge-regular")
        units = grid.expand()
        assert units, "huge-regular expanded to nothing"
        assert all(u.graph.family == "pairing_regular" for u in units)
        assert all(u.optimum == "none" for u in units)
        # regular_odd applies only to odd degrees.
        assert not any(
            u.algorithm == "regular_odd" and u.graph.params[0][1] % 2 == 0
            for u in units
        )

    def test_huge_slice_smoke(self):
        # A tiny stand-in for the n=10^6 acceptance run: the direct
        # build must stay well under a second at n=20k.
        graph = pairing_regular(4, 20_000, seed=0)
        assert graph.num_edges == 40_000
        assert graph.is_simple()
