"""Failure injection: the simulator must catch protocol violations.

A production-quality simulator fails loudly on misbehaving programs
rather than producing silently wrong science.  These tests feed the
scheduler programs that break each rule in turn — and check that the
degraded-but-legal case (sends to halted nodes, silently dropped) is
*observable*: the runtime reports delivered/dropped message counts
through the telemetry recorder, identically on every engine.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import (
    InconsistentOutputError,
    RoundLimitExceeded,
    SimulationError,
)
from repro.obs import recording
from repro.portgraph import from_networkx
from repro.runtime import (
    ENGINES,
    NodeProgram,
    run_anonymous,
    use_engine,
    vector_available,
)
from repro.runtime.outputs import decode_edge_set


def _skip_unless_runnable(engine: str) -> None:
    if engine == "vector" and not vector_available():
        pytest.skip("numpy not installed")


class SendsOnBadPort(NodeProgram):
    def send(self, rnd):
        return {self.degree + 1: "x"}

    def receive(self, rnd, inbox):
        self.halt()


class SendsOnZeroPort(NodeProgram):
    def send(self, rnd):
        return {0: "x"}

    def receive(self, rnd, inbox):
        self.halt()


class HaltsWithBadPort(NodeProgram):
    def send(self, rnd):
        return {}

    def receive(self, rnd, inbox):
        self.halt({self.degree + 5})


class HaltsWithNegativePort(NodeProgram):
    def send(self, rnd):
        return {}

    def receive(self, rnd, inbox):
        self.halt({-1})


class Spins(NodeProgram):
    def send(self, rnd):
        return {i: rnd for i in range(1, self.degree + 1)}

    def receive(self, rnd, inbox):
        pass


class AsymmetricOutput(NodeProgram):
    """Degree-1 nodes select their edge only if ... nothing: a program
    whose output depends on nothing shared, breaking §2.2 consistency."""

    counter = 0

    def send(self, rnd):
        return {}

    def receive(self, rnd, inbox):
        AsymmetricOutput.counter += 1
        if AsymmetricOutput.counter % 2:
            self.halt({1})
        else:
            self.halt(frozenset())


@pytest.fixture
def triangle_graph():
    return from_networkx(nx.complete_graph(3))


class TestSchedulerGuards:
    def test_bad_send_port_high(self, triangle_graph):
        with pytest.raises(SimulationError):
            run_anonymous(triangle_graph, SendsOnBadPort)

    def test_bad_send_port_zero(self, triangle_graph):
        with pytest.raises(SimulationError):
            run_anonymous(triangle_graph, SendsOnZeroPort)

    def test_bad_halt_port(self, triangle_graph):
        with pytest.raises(SimulationError):
            run_anonymous(triangle_graph, HaltsWithBadPort)

    def test_negative_halt_port(self, triangle_graph):
        with pytest.raises(SimulationError):
            run_anonymous(triangle_graph, HaltsWithNegativePort)

    def test_round_limit_guard(self, triangle_graph):
        with pytest.raises(RoundLimitExceeded):
            run_anonymous(triangle_graph, Spins, max_rounds=25)

    def test_round_limit_message_mentions_counts(self, triangle_graph):
        with pytest.raises(RoundLimitExceeded, match="3 node"):
            run_anonymous(triangle_graph, Spins, max_rounds=5)


class HaltsEarlyAtLeaves(NodeProgram):
    """Degree-1 nodes halt after the first round; the middle node keeps
    broadcasting for two more rounds, so its sends drop."""

    def send(self, rnd):
        return {i: rnd for i in range(1, self.degree + 1)}

    def receive(self, rnd, inbox):
        if self.degree == 1 or rnd >= 2:
            self.halt(frozenset())


class TestDeliveryTelemetry:
    """Dropped sends are legal but must be observable (SentMessage.dropped
    end-to-end: trace label, strict-mode error, and runtime counters)."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_delivered_and_dropped_counted(self, engine):
        # path 0-1-2: round 0 delivers 4 messages everywhere; rounds 1-2
        # the middle node broadcasts 2 messages each to halted leaves.
        _skip_unless_runnable(engine)
        graph = from_networkx(nx.path_graph(3))
        with recording() as rec:
            with use_engine(engine):
                result = run_anonymous(graph, HaltsEarlyAtLeaves)
        assert result.rounds == 3
        assert rec.counters["runtime.runs"] == 1
        assert rec.counters["runtime.rounds"] == 3
        assert rec.counters["runtime.messages.delivered"] == 4
        assert rec.counters["runtime.messages.dropped"] == 4

    @pytest.mark.parametrize("engine", ENGINES)
    def test_counters_match_trace_labels(self, engine):
        """The counters agree with the ground truth in the full trace."""
        _skip_unless_runnable(engine)
        graph = from_networkx(nx.path_graph(3))
        with recording() as rec:
            with use_engine(engine):
                result = run_anonymous(
                    graph, HaltsEarlyAtLeaves, record_trace=True
                )
        messages = [
            m for rnd in result.trace.rounds for m in rnd.messages
        ]
        delivered = sum(1 for m in messages if not m.dropped)
        dropped = sum(1 for m in messages if m.dropped)
        assert rec.counters["runtime.messages.delivered"] == delivered
        assert rec.counters["runtime.messages.dropped"] == dropped

    @pytest.mark.parametrize("engine", ENGINES)
    def test_strict_delivery_rejects_the_same_run(self, engine):
        _skip_unless_runnable(engine)
        graph = from_networkx(nx.path_graph(3))
        with use_engine(engine):
            with pytest.raises(SimulationError, match="halted"):
                run_anonymous(
                    graph, HaltsEarlyAtLeaves, strict_delivery=True
                )

    def test_no_recorder_no_counters(self):
        """Without a recorder the run is untouched (no-op fast path)."""
        graph = from_networkx(nx.path_graph(3))
        result = run_anonymous(graph, HaltsEarlyAtLeaves)
        assert result.rounds == 3


class TestOutputGuards:
    def test_inconsistent_output_detected_on_decode(self):
        graph = from_networkx(nx.path_graph(2))
        AsymmetricOutput.counter = 0
        result = run_anonymous(graph, AsymmetricOutput)
        with pytest.raises(InconsistentOutputError):
            decode_edge_set(graph, result.outputs)

    def test_decode_error_names_offender(self):
        graph = from_networkx(nx.path_graph(2))
        with pytest.raises(InconsistentOutputError, match="X"):
            decode_edge_set(
                graph, {0: frozenset({1}), 1: frozenset()}
            )
