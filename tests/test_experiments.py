"""Tests for the experiment drivers: Table 1, figures, sweeps, ablation."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.experiments import (
    all_figures,
    average_case_sweep,
    format_ablations,
    format_average_case,
    format_round_complexity,
    format_table1,
    reproduce_table1,
    round_complexity_sweep,
    run_ablations,
)


class TestTable1:
    def test_small_reproduction_all_tight(self):
        rows = reproduce_table1(
            even_degrees=(2, 4), odd_degrees=(1, 3), ks=(1,)
        )
        assert all(row.tight for row in rows)

    def test_row_count(self):
        rows = reproduce_table1(
            even_degrees=(2, 4), odd_degrees=(1, 3), ks=(1, 2)
        )
        # 2 even + 2 odd + 1 (Δ=1) + 2 ks * 2 parities
        assert len(rows) == 2 + 2 + 1 + 4

    def test_measured_values(self):
        rows = reproduce_table1(even_degrees=(6,), odd_degrees=(5,), ks=(3,))
        by_family = {(r.family, r.parameter): r for r in rows}
        assert by_family[("d-regular (even)", 6)].measured_ratio == Fraction(
            11, 3
        )
        assert by_family[("d-regular (odd)", 5)].measured_ratio == Fraction(3)
        assert by_family[("max degree Δ", 6)].measured_ratio == Fraction(11, 3)
        assert by_family[("max degree Δ", 7)].measured_ratio == Fraction(11, 3)

    def test_formatting(self):
        rows = reproduce_table1(even_degrees=(2,), odd_degrees=(1,), ks=(1,))
        text = format_table1(rows)
        assert "TIGHT" in text
        assert "MISMATCH" not in text


class TestFigures:
    @pytest.mark.parametrize("figure_id", sorted(all_figures()))
    def test_every_figure_builds_and_verifies(self, figure_id):
        artifact = all_figures()[figure_id]()
        assert artifact.checks, "every figure must verify at least one claim"
        assert artifact.rendering
        assert artifact.objects

    def test_figure8_phase_monotonicity(self):
        art = all_figures()["8"]()
        assert art.objects["phase2"] <= art.objects["phase1"]

    def test_figure9_certificate_exposed(self):
        art = all_figures()["9"]()
        cert = art.objects["certificate"]
        assert cert.histogram_inequality_holds


class TestSweeps:
    def test_round_complexity_predictions(self):
        rows = round_complexity_sweep(odd_degrees=(1, 3), sizes=(12, 16))
        assert rows
        assert all(r.matches_prediction for r in rows)
        text = format_round_complexity(rows)
        assert "NO" not in text.replace("| NO", "")

    def test_rounds_independent_of_size(self):
        rows = round_complexity_sweep(odd_degrees=(3,), sizes=(12, 24, 48))
        by_algorithm: dict[str, set[int]] = {}
        for r in rows:
            by_algorithm.setdefault(r.algorithm, set()).add(r.rounds)
        for algorithm, counts in by_algorithm.items():
            assert len(counts) == 1, f"{algorithm} depends on n"

    def test_average_case_sweep(self):
        rows = average_case_sweep(
            regular_degrees=(3,),
            regular_size=8,
            bounded_deltas=(3,),
            bounded_size=8,
            instances=2,
        )
        assert rows
        assert all(r.ratio >= 1 for r in rows)
        assert all(r.optimum_exact for r in rows)
        text = format_average_case(rows)
        assert "summary" in text

    def test_average_case_guarantees_respected(self):
        rows = average_case_sweep(
            regular_degrees=(3,),
            regular_size=10,
            bounded_deltas=(4,),
            bounded_size=10,
            instances=3,
        )
        for row in rows:
            if row.algorithm == "bounded_degree":
                k = max(row.max_degree, 2) // 2
                assert row.ratio <= Fraction(4) - Fraction(1, k)
            if row.algorithm in ("ids_greedy", "central_greedy"):
                assert row.ratio <= 2


class TestAblation:
    def test_rows_and_formatting(self):
        rows = run_ablations(odd_degrees=(3,), deltas=(3,))
        assert len(rows) == 3
        text = format_ablations(rows)
        assert "theorem4-without-phase2" in text

    def test_phase2_never_helps_feasibility_but_shrinks(self):
        rows = run_ablations(odd_degrees=(3, 5), deltas=())
        phase2_rows = [
            r for r in rows if r.ablation == "theorem4-without-phase2"
        ]
        assert all(r.solution_size >= r.baseline_size for r in phase2_rows)

    def test_port_one_never_beats_theorem4_on_odd(self):
        rows = run_ablations(odd_degrees=(3,), deltas=())
        comparison = [
            r for r in rows if r.ablation == "port-one-on-odd-regular"
        ]
        assert all(r.solution_size >= r.baseline_size for r in comparison)
