"""Tests for the pluggable execution backends.

Covers the backend subsystem's contracts:

* every backend produces byte-identical records (the determinism
  contract: records depend on specs, never on the execution substrate),
* ``AutoBackend`` calibrates — inline for sub-millisecond units,
  fan-out for slow units (driven by a fake clock, no sleeping),
* the report records which backend ran and the calibration decision,
* cached reruns are byte-identical across all backends and cache
  entries written by one backend are served to every other.
"""

from __future__ import annotations

import itertools

import pytest

from repro import api
from repro.engine import (
    GraphSpec,
    JobSpec,
    ResultCache,
    SweepGrid,
    run_units,
)
from repro.engine.backends import (
    AutoBackend,
    BACKEND_NAMES,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    resolve_backend,
)

GRID = SweepGrid(
    name="backend-test",
    algorithms=("port_one", "bounded_degree", "randomized_matching"),
    family="regular",
    degrees=(2, 3),
    sizes=(12,),
    seeds=2,
)


def units():
    return GRID.expand()


class RecordingBackend(ExecutionBackend):
    """An inline backend that records every batch handed to it."""

    name = "recording"

    def __init__(self):
        self.batches: list[int] = []

    def run(self, pending):
        self.batches.append(len(pending))
        yield from InlineBackend().run(pending)


def fake_clock(step: float):
    """A clock advancing *step* seconds per reading (2 reads per unit)."""
    counter = itertools.count()
    return lambda: next(counter) * step


def clock_from_unit_costs(costs):
    """A clock scripting each unit's apparent cost, in execution order.

    The backend reads the clock twice per unit (start/end); consecutive
    reading pairs are given the costs in *costs*, then zero.
    """
    readings: list[float] = []
    t = 0.0
    for cost in costs:
        readings.append(t)
        t += cost
        readings.append(t)
    it = iter(readings)
    return lambda: next(it, t)


class TestResolveBackend:
    def test_names_resolve(self):
        assert isinstance(resolve_backend("inline"), InlineBackend)
        assert isinstance(resolve_backend("thread", workers=3), ThreadBackend)
        assert isinstance(resolve_backend("process", workers=3),
                          ProcessBackend)
        assert isinstance(resolve_backend("auto", workers=3), AutoBackend)

    def test_none_means_auto(self):
        assert isinstance(resolve_backend(None, workers=2), AutoBackend)

    def test_workers_threaded_through(self):
        assert resolve_backend("process", workers=5).workers == 5
        assert resolve_backend("thread", workers=5).workers == 5

    def test_instances_pass_through(self):
        backend = InlineBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("gpu")

    def test_backend_names_cover_the_builtins(self):
        assert set(BACKEND_NAMES) == {"auto", "inline", "process", "thread"}


class TestBackendEquivalence:
    def test_all_backends_byte_identical(self):
        baseline = run_units(units(), backend="inline").records
        for name in ("thread", "process", "auto"):
            report = run_units(units(), workers=2, backend=name)
            assert [r.canonical() for r in report.records] == [
                r.canonical() for r in baseline
            ], f"backend {name} diverged from inline"

    def test_cache_entries_shared_between_backends(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_units(units(), backend="inline", cache=cache)
        assert first.computed == len(units())
        for name in ("thread", "process", "auto"):
            rerun = run_units(units(), workers=2, backend=name, cache=cache)
            assert rerun.cache_hits == len(units())
            assert rerun.computed == 0
            assert [r.canonical() for r in rerun.records] == [
                r.canonical() for r in first.records
            ]

    def test_thread_backend_handles_empty_batch(self):
        assert list(ThreadBackend(4).run([])) == []

    def test_process_backend_single_unit_stays_in_process(self):
        # One unit (or one worker) must not pay pool startup.
        unit = units()[0]
        results = list(ProcessBackend(4).run([(0, unit)]))
        assert len(results) == 1 and results[0][0] == 0


class TestAutoCalibration:
    def test_fast_units_stay_inline(self):
        fanout = RecordingBackend()
        backend = AutoBackend(
            workers=4, clock=fake_clock(0.0001), fanout=fanout
        )
        report = run_units(units(), backend=backend)
        assert fanout.batches == []  # never fanned out
        assert backend.describe() == "auto:inline"
        assert "staying inline" in report.calibration
        assert report.backend == "auto:inline"

    def test_slow_units_fan_out(self):
        fanout = RecordingBackend()
        backend = AutoBackend(workers=4, clock=fake_clock(0.5), fanout=fanout)
        batch = units()
        report = run_units(batch, backend=backend)
        # the probe runs inline, everything else goes to the fan-out
        assert fanout.batches == [len(batch) - AutoBackend().probe]
        assert backend.describe() == "auto:recording"
        assert "→ recording" in report.calibration
        assert len(report.records) == len(batch)

    def test_single_worker_never_probes(self):
        fanout = RecordingBackend()
        backend = AutoBackend(workers=1, clock=fake_clock(9.9), fanout=fanout)
        run_units(units(), backend=backend)
        assert fanout.batches == []
        assert "no fan-out possible" in backend.decision

    def test_tiny_batches_skip_calibration(self):
        fanout = RecordingBackend()
        backend = AutoBackend(workers=4, clock=fake_clock(9.9), fanout=fanout)
        report = run_units(units()[:2], backend=backend)
        assert fanout.batches == []
        assert "too few" in report.calibration

    def test_slow_tail_re_escalates(self):
        """A grid ordered cheapest-first must not fool the probe: the
        first slow unit after an inline decision hands the rest over."""
        fanout = RecordingBackend()
        batch = units()
        probe = AutoBackend().probe
        # probe units and the next one look cheap, the following is slow
        costs = [0.0001] * (probe + 1) + [5.0]
        backend = AutoBackend(
            workers=4, clock=clock_from_unit_costs(costs), fanout=fanout
        )
        report = run_units(batch, backend=backend)
        # probe + 1 cheap + 1 slow ran inline; the rest were handed over
        assert fanout.batches == [len(batch) - probe - 2]
        assert "re-escalated" in report.calibration
        assert report.backend == "auto:recording"
        assert len(report.records) == len(batch)

    def test_re_escalation_results_identical_to_inline(self):
        fanout = RecordingBackend()
        probe = AutoBackend().probe
        backend = AutoBackend(
            workers=4,
            clock=clock_from_unit_costs([0.0001] * probe + [5.0]),
            fanout=fanout,
        )
        records = run_units(units(), backend=backend).records
        baseline = run_units(units(), backend="inline").records
        assert [r.canonical() for r in records] == [
            r.canonical() for r in baseline
        ]

    def test_calibration_results_identical_to_inline(self):
        slow = AutoBackend(
            workers=2, clock=fake_clock(0.5), fanout=RecordingBackend()
        )
        auto_records = run_units(units(), backend=slow).records
        inline_records = run_units(units(), backend="inline").records
        assert [r.canonical() for r in auto_records] == [
            r.canonical() for r in inline_records
        ]


class TestReportSurface:
    def test_report_records_backend_and_decision(self):
        report = run_units(units()[:3], backend="inline")
        assert report.backend == "inline"
        assert report.calibration == ""
        assert report.backend_line() == "backend: inline"

    def test_backend_line_includes_calibration(self):
        backend = AutoBackend(
            workers=4, clock=fake_clock(0.0001), fanout=RecordingBackend()
        )
        report = run_units(units(), backend=backend)
        line = report.backend_line()
        assert line.startswith("backend: auto:inline [")
        assert "ms/unit" in line

    def test_api_run_sweep_threads_backend(self, tmp_path):
        report = api.run_sweep(
            GRID, backend="thread", workers=2,
            cache=ResultCache(tmp_path),
        )
        assert report.backend == "thread(workers=2)"

    def test_run_one_defaults_to_inline_resolution(self):
        record = api.run_one(
            "port_one", api.graph("cycle", n=8), optimum="none"
        )
        assert record.solution_size > 0


class TestJobSpecStillHashesIdentically:
    """Backend choice must never leak into content addresses."""

    def test_key_independent_of_backend(self, tmp_path):
        from repro.engine import cache_key

        unit = JobSpec(
            "port_one", GraphSpec.make("regular", seed=1, d=3, n=12)
        )
        key = cache_key(unit)
        for name in BACKEND_NAMES:
            report = run_units([unit], workers=2, backend=name)
            assert report.records[0].key == key
