"""Tests for the E17 message-complexity experiment."""

from __future__ import annotations

from repro.experiments.messages import (
    format_messages,
    message_complexity_sweep,
)


class TestMessageSweep:
    def test_rows_and_expectations(self):
        rows = message_complexity_sweep(odd_degrees=(3,), sizes=(16, 32))
        assert len(rows) == 6  # 3 algorithms x 2 sizes
        port_one = [r for r in rows if r.algorithm == "port_one"]
        for r in port_one:
            # exactly one message per port: total = sum of degrees = 2|E|
            # (= d·n on a d-regular graph), all in the single round
            assert r.total_messages == r.d * r.n
            assert r.total_messages == r.max_round_messages
            assert r.rounds == 1

    def test_setup_rounds_are_traffic_peak(self):
        rows = message_complexity_sweep(odd_degrees=(5,), sizes=(16,))
        theorem4 = next(r for r in rows if r.algorithm == "regular_odd")
        # the setup broadcast uses every port; nothing later exceeds it
        assert theorem4.max_round_messages == 5 * 16

    def test_per_node_traffic_flat_in_n(self):
        rows = message_complexity_sweep(odd_degrees=(3,), sizes=(16, 64))
        bounded = [r for r in rows if r.algorithm == "bounded_degree"]
        a, b = (r.messages_per_node for r in bounded)
        assert abs(a - b) < 0.3 * max(a, b)

    def test_formatting(self):
        rows = message_complexity_sweep(odd_degrees=(3,), sizes=(16,))
        text = format_messages(rows)
        assert "message complexity" in text
        assert "msgs/node" in text
