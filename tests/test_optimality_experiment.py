"""Tests for the E16 optimality experiment and new CLI subcommands."""

from __future__ import annotations

from repro.cli import main
from repro.experiments.optimality import (
    format_optimality,
    recompute_lower_bounds,
)


class TestOptimalityExperiment:
    def test_small_recompute_all_match(self):
        rows = recompute_lower_bounds(even_degrees=(2, 4), odd_degrees=(1, 3))
        assert all(r.matches for r in rows)

    def test_quotient_sizes(self):
        rows = recompute_lower_bounds(even_degrees=(4,), odd_degrees=(3,))
        by_family = {r.family: r for r in rows}
        assert by_family["regular-even"].quotient_nodes == 1
        assert by_family["regular-odd"].quotient_nodes == 4  # d + 1

    def test_formatting(self):
        rows = recompute_lower_bounds(even_degrees=(2,), odd_degrees=())
        text = format_optimality(rows)
        assert "MATCH" in text
        assert "MISMATCH" not in text


class TestVerifyAndRenderCli:
    def test_verify_fast(self, capsys):
        assert main(["verify", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "VERDICT: all reproduction checks passed" in out

    def test_render_even(self, capsys):
        assert main(["render", "even", "-d", "4"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out
        assert "quotient multigraph" in out

    def test_render_odd(self, capsys):
        assert main(["render", "odd", "-d", "3"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out

    def test_render_adjusts_parity(self, capsys):
        assert main(["render", "even", "-d", "3"]) == 0
        assert "d = 4" in capsys.readouterr().out
