"""Tests for JSON serialisation of port-numbered graphs."""

from __future__ import annotations

import json

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.exceptions import GraphValidationError
from repro.portgraph import from_networkx
from repro.portgraph.io import (
    dump_graph,
    graph_from_json,
    graph_to_json,
    load_graph,
)

from tests.conftest import port_graphs


class TestRoundTrip:
    def test_simple_graph(self, triangle):
        assert graph_from_json(graph_to_json(triangle)) == triangle

    def test_multigraph_with_loops(self, multigraph_m):
        document = graph_to_json(multigraph_m)
        # the directed loop is a single-port orbit
        assert any(len(orbit) == 1 for orbit in document["connections"])
        assert graph_from_json(document) == multigraph_m

    def test_document_is_json_serialisable(self, figure2_like_h):
        text = json.dumps(graph_to_json(figure2_like_h))
        assert graph_from_json(json.loads(text)) == figure2_like_h

    def test_file_round_trip(self, tmp_path, triangle):
        path = tmp_path / "graph.json"
        dump_graph(triangle, str(path))
        assert load_graph(str(path)) == triangle

    @settings(max_examples=30, deadline=None)
    @given(g=port_graphs(max_nodes=8))
    def test_random_graphs_round_trip(self, g):
        assert graph_from_json(graph_to_json(g)) == g


class TestValidation:
    def test_missing_keys_rejected(self):
        with pytest.raises(GraphValidationError):
            graph_from_json({})

    def test_bad_orbit_rejected(self):
        with pytest.raises(GraphValidationError):
            graph_from_json(
                {
                    "nodes": [{"id": "u", "degree": 3}],
                    "connections": [[["u", 1], ["u", 2], ["u", 3]]],
                }
            )

    def test_non_json_nodes_rejected(self):
        g = from_networkx(
            nx.relabel_nodes(nx.path_graph(2), {0: (0, 0), 1: (1, 1)})
        )
        with pytest.raises(GraphValidationError):
            graph_to_json(g)

    def test_inconsistent_document_rejected(self):
        with pytest.raises(Exception):
            graph_from_json(
                {
                    "nodes": [{"id": "u", "degree": 2}],
                    "connections": [[["u", 1], ["u", 1]]],
                }
            )
