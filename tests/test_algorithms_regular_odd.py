"""Tests for the Theorem 4 algorithm (RegularOddEDS)."""

from __future__ import annotations

from fractions import Fraction

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import RegularOddEDS
from repro.eds import is_edge_dominating_set, minimum_eds_size, regular_ratio
from repro.matching import (
    has_path_of_length_three,
    is_edge_cover,
    is_forest,
    is_star_forest,
)
from repro.portgraph import (
    all_matchings,
    distinguishable_edge,
    from_networkx,
    random_numbering,
)
from repro.runtime import run_anonymous


def odd_regular_graphs():
    """Strategy producing random d-regular graphs with d odd."""

    @st.composite
    def build(draw):
        d = draw(st.sampled_from([1, 3, 5]))
        candidates = [n for n in range(d + 1, 15) if (n * d) % 2 == 0]
        n = draw(st.sampled_from(candidates))
        seed = draw(st.integers(0, 10**6))
        graph = nx.random_regular_graph(d, n, seed=seed)
        numbering_seed = draw(st.integers(0, 10**6))
        return from_networkx(graph, random_numbering(numbering_seed))

    return build()


class TestBasics:
    def test_perfect_matching_graph(self, path_graph_p2):
        """d = 1: the algorithm selects every edge (which is optimal)."""
        result = run_anonymous(path_graph_p2, RegularOddEDS)
        assert result.edge_set() == frozenset(path_graph_p2.edges)
        assert result.rounds == RegularOddEDS.total_rounds(1)

    def test_k4_output(self):
        g = from_networkx(nx.complete_graph(4))  # 3-regular
        result = run_anonymous(g, RegularOddEDS)
        d = result.edge_set()
        assert is_edge_dominating_set(g, d)
        assert is_edge_cover(g, d)
        assert is_star_forest(d)

    def test_round_count_exact(self):
        for d, n in ((3, 8), (5, 12)):
            g = from_networkx(nx.random_regular_graph(d, n, seed=1))
            result = run_anonymous(g, RegularOddEDS)
            assert result.rounds == RegularOddEDS.total_rounds(d) == 2 + 2 * d * d

    def test_rounds_independent_of_n(self):
        """Local algorithm: round count must not depend on graph size."""
        counts = set()
        for n in (4, 8, 16, 24):
            g = from_networkx(nx.random_regular_graph(3, n, seed=n))
            counts.add(run_anonymous(g, RegularOddEDS).rounds)
        assert len(counts) == 1

    def test_petersen_graph(self):
        g = from_networkx(nx.petersen_graph())  # 3-regular
        result = run_anonymous(g, RegularOddEDS)
        d = result.edge_set()
        assert is_edge_dominating_set(g, d)
        ratio = Fraction(len(d), minimum_eds_size(g))
        assert ratio <= regular_ratio(3)


class TestStructuralInvariants:
    """The invariants from the proof of Theorem 4."""

    @settings(max_examples=30, deadline=None)
    @given(g=odd_regular_graphs())
    def test_output_is_feasible_eds(self, g):
        result = run_anonymous(g, RegularOddEDS)
        assert is_edge_dominating_set(g, result.edge_set())

    @settings(max_examples=30, deadline=None)
    @given(g=odd_regular_graphs())
    def test_output_is_edge_cover(self, g):
        """Phase I builds an edge cover and phase II preserves it."""
        result = run_anonymous(g, RegularOddEDS)
        assert is_edge_cover(g, result.edge_set())

    @settings(max_examples=30, deadline=None)
    @given(g=odd_regular_graphs())
    def test_output_is_star_forest(self, g):
        """Phase II leaves a forest of node-disjoint stars."""
        result = run_anonymous(g, RegularOddEDS)
        d = result.edge_set()
        assert is_forest(d)
        assert not has_path_of_length_three(d)
        assert is_star_forest(d)

    @settings(max_examples=30, deadline=None)
    @given(g=odd_regular_graphs())
    def test_size_bound(self, g):
        """|D| <= d |V| / (d + 1) (each star has <= d edges)."""
        d = g.require_regular()
        result = run_anonymous(g, RegularOddEDS)
        assert (d + 1) * len(result.edge_set()) <= d * g.num_nodes

    @settings(max_examples=20, deadline=None)
    @given(g=odd_regular_graphs())
    def test_approximation_guarantee(self, g):
        """|D| <= (4 - 6/(d+1)) |D*| (Theorem 4)."""
        if g.num_edges > 40:
            return  # keep the exact solver fast
        d = g.require_regular()
        result = run_anonymous(g, RegularOddEDS)
        optimum = minimum_eds_size(g)
        assert Fraction(len(result.edge_set()), optimum) <= regular_ratio(d)


class TestDistributedLabelAgreement:
    """The message-passing setup must agree with the centralised
    Section 5 reference implementation."""

    @settings(max_examples=30, deadline=None)
    @given(g=odd_regular_graphs())
    def test_phase1_uses_exactly_the_matchings(self, g):
        """Every edge the algorithm ever selects lies in some M(i, j)."""
        result = run_anonymous(g, RegularOddEDS)
        m_union = set()
        for matching in all_matchings(g).values():
            m_union |= matching
        assert result.edge_set() <= m_union

    @settings(max_examples=20, deadline=None)
    @given(g=odd_regular_graphs())
    def test_every_node_has_distinguishable_edge(self, g):
        """Lemma 1 on odd-regular graphs, via the static reference."""
        for v in g.nodes:
            assert distinguishable_edge(g, v) is not None
