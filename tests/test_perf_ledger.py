"""Tests for the perf ledger (``repro.obs.perf``) and its CLI.

The acceptance criterion: ``repro-eds perf compare`` detects an
artificially injected ≥25% phase slowdown and exits nonzero, while
back-to-back identical runs compare clean (exit 0).  The noise
machinery that makes that gate trustworthy — per-phase medians across
reps, baseline medians across runs, and the minimum-phase noise floor —
is tested piecewise.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

import pytest

from repro import api
from repro.cli import main
from repro.engine import SweepGrid
from repro.obs import telemetry
from repro.obs.perf import (
    DEFAULT_MIN_PHASE_S,
    DEFAULT_THRESHOLD,
    WALL_PHASE,
    LedgerEntry,
    append_entry,
    compare_entries,
    compare_ledger,
    entry_from_sessions,
    format_entry,
    format_ledger,
    git_sha,
    read_ledger,
)

SEED_LEDGER = Path(__file__).parent / "data" / "perf_ledger_seed.jsonl"

GRID = SweepGrid(
    name="ledger-test",
    algorithms=("port_one",),
    family="regular",
    degrees=(2, 3),
    sizes=(12,),
    seeds=1,
)


def make_entry(phases: dict[str, float], *, wall: float | None = None,
               scenario: str = "s", engine: str = "e") -> LedgerEntry:
    return LedgerEntry(
        scenario=scenario,
        engine=engine,
        phases=dict(phases),
        unit_wall_s=wall if wall is not None else sum(phases.values()),
        units=4,
        reps=3,
        git_sha="abc1234",
        recorded_unix=1_700_000_000.0,
        python="3.11.7",
    )


class TestLedgerEntry:
    def test_json_round_trip(self):
        entry = make_entry({"simulate": 0.25, "optimum": 0.125})
        entry.mem_peak_b = 1 << 20
        entry.rss_peak_b = 1 << 26
        entry.numpy = True
        entry.note = "round trip"
        restored = LedgerEntry.from_json_dict(
            json.loads(json.dumps(entry.to_json_dict()))
        )
        assert restored == entry

    def test_json_omits_absent_memory(self):
        data = make_entry({"simulate": 0.1}).to_json_dict()
        assert "mem_peak_b" not in data and "rss_peak_b" not in data
        assert "note" not in data

    def test_group_key(self):
        entry = make_entry({}, scenario="large-regular", engine="vector")
        assert entry.group == ("large-regular", "vector")

    def test_append_and_read(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first = make_entry({"simulate": 0.1})
        second = make_entry({"simulate": 0.2})
        append_entry(path, first)
        append_entry(path, second)
        entries = read_ledger(path)
        assert entries == [first, second]
        # Append-only: a third write never disturbs the first two lines.
        head = path.read_text().splitlines()[:2]
        append_entry(path, make_entry({"simulate": 0.3}))
        assert path.read_text().splitlines()[:2] == head

    def test_read_missing_ledger_is_empty(self, tmp_path):
        assert read_ledger(tmp_path / "nope.jsonl") == []


class TestEntryFromSessions:
    @pytest.fixture(scope="class")
    def sessions(self):
        out = []
        for _ in range(3):
            with telemetry() as session:
                api.run_sweep(GRID.expand(), cache=None, backend="inline")
            out.append(session)
        return out

    def test_medians_across_reps(self, sessions):
        entry = entry_from_sessions(
            sessions, scenario="default", engine="compiled"
        )
        assert entry.reps == 3
        assert entry.units == len(GRID.expand())
        assert entry.unit_wall_s == statistics.median(
            s.unit_wall_total_s() for s in sessions
        )
        simulate_samples = [
            s.metrics.summary("phase.simulate")["total"] for s in sessions
        ]
        assert entry.phases["simulate"] == statistics.median(simulate_samples)
        assert entry.mem_peak_b is None

    def test_memory_lands_in_entry(self):
        with telemetry(capture_memory=True) as session:
            api.run_sweep(GRID.expand()[:1], cache=None, backend="inline")
        entry = entry_from_sessions(
            [session], scenario="default", engine="compiled"
        )
        assert entry.mem_peak_b and entry.mem_peak_b > 0
        assert entry.rss_peak_b and entry.rss_peak_b > entry.mem_peak_b

    def test_empty_sessions_rejected(self):
        with pytest.raises(ValueError):
            entry_from_sessions([], scenario="s", engine="e")


class TestCompareEntries:
    def test_identical_entries_compare_clean(self):
        entry = make_entry({"simulate": 0.1, "optimum": 0.05})
        report = compare_entries([entry], entry)
        assert report.ok
        assert all(d.ratio == 1.0 for d in report.deltas)

    def test_injected_slowdown_is_flagged(self):
        base = make_entry({"simulate": 0.1, "optimum": 0.05})
        slow = make_entry({"simulate": 0.15, "optimum": 0.05})
        report = compare_entries([base], slow)
        assert not report.ok
        flagged = {d.phase for d in report.regressions}
        assert "simulate" in flagged
        assert "optimum" not in flagged

    def test_wall_participates_as_pseudo_phase(self):
        base = make_entry({"simulate": 0.01}, wall=0.1)
        slow = make_entry({"simulate": 0.01}, wall=0.2)
        report = compare_entries([base], slow)
        assert {d.phase for d in report.regressions} == {WALL_PHASE}

    def test_noise_floor_suppresses_tiny_phases(self):
        # 1 ms -> 2 ms is a 2x "regression" entirely below the floor.
        tiny = DEFAULT_MIN_PHASE_S / 5
        base = make_entry({"feasibility": tiny}, wall=1.0)
        slow = make_entry({"feasibility": tiny * 2}, wall=1.0)
        report = compare_entries([base], slow)
        assert report.ok
        # ...but the same ratio above the floor is flagged.
        base = make_entry({"feasibility": DEFAULT_MIN_PHASE_S * 2}, wall=1.0)
        slow = make_entry(
            {"feasibility": DEFAULT_MIN_PHASE_S * 4}, wall=1.0
        )
        assert not compare_entries([base], slow).ok

    def test_threshold_boundary(self):
        base = make_entry({"simulate": 0.1}, wall=1.0)
        at = make_entry(
            {"simulate": 0.1 * (1 + DEFAULT_THRESHOLD)}, wall=1.0
        )
        assert compare_entries([base], at).ok  # strict inequality
        over = make_entry(
            {"simulate": 0.1 * (1 + DEFAULT_THRESHOLD) + 0.001}, wall=1.0
        )
        assert not compare_entries([base], over).ok

    def test_improvement_is_marked_not_flagged(self):
        base = make_entry({"simulate": 0.2})
        fast = make_entry({"simulate": 0.1})
        report = compare_entries([base], fast)
        assert report.ok
        delta = next(d for d in report.deltas if d.phase == "simulate")
        assert delta.improved

    def test_baseline_is_median_of_runs(self):
        # One outlier run must not move the baseline: median of
        # [0.1, 0.1, 0.5] is 0.1, so current 0.15 regresses.
        baseline = [
            make_entry({"simulate": 0.1}),
            make_entry({"simulate": 0.1}),
            make_entry({"simulate": 0.5}),
        ]
        current = make_entry({"simulate": 0.15})
        report = compare_entries(baseline, current)
        assert "simulate" in {d.phase for d in report.regressions}
        # With mean aggregation the outlier would have masked it.

    def test_new_phase_without_baseline_is_skipped(self):
        base = make_entry({"simulate": 0.1}, wall=1.0)
        current = make_entry({"simulate": 0.1, "brand_new": 9.0}, wall=1.0)
        report = compare_entries([base], current)
        assert report.ok
        assert "brand_new" not in {d.phase for d in report.deltas}


class TestCompareLedger:
    def test_groups_compare_independently(self):
        entries = [
            make_entry({"simulate": 0.1}, engine="legacy"),
            make_entry({"simulate": 0.1}, engine="legacy"),
            make_entry({"simulate": 0.1}, engine="vector"),
            make_entry({"simulate": 0.2}, engine="vector"),
        ]
        reports = compare_ledger(entries)
        assert len(reports) == 2
        by_engine = {r.engine: r for r in reports}
        assert by_engine["legacy"].ok
        assert not by_engine["vector"].ok

    def test_single_entry_group_is_skipped(self):
        assert compare_ledger([make_entry({"simulate": 0.1})]) == []

    def test_baseline_window_bounds_history(self):
        # Ancient slowness beyond the window must not excuse a current
        # regression: with baseline_runs=2 only the two recent fast
        # runs count.
        entries = [
            make_entry({"simulate": 0.9}),
            make_entry({"simulate": 0.1}),
            make_entry({"simulate": 0.1}),
            make_entry({"simulate": 0.15}),
        ]
        (report,) = compare_ledger(entries, baseline_runs=2)
        assert report.baseline_runs == 2
        assert not report.ok
        # A wide window lets the ancient 0.9 pull the median up... but
        # the median still resists: [0.9, 0.1, 0.1] -> 0.1.
        (report,) = compare_ledger(entries, baseline_runs=5)
        assert not report.ok

    def test_scenario_and_engine_filters(self):
        entries = [
            make_entry({"simulate": 0.1}, scenario="a"),
            make_entry({"simulate": 0.2}, scenario="a"),
            make_entry({"simulate": 0.1}, scenario="b"),
            make_entry({"simulate": 0.1}, scenario="b"),
        ]
        reports = compare_ledger(entries, scenario="b")
        assert [r.scenario for r in reports] == ["b"]
        assert compare_ledger(entries, engine="no-such") == []


class TestSeedFixture:
    def test_seed_ledger_parses_and_compares_clean(self):
        entries = read_ledger(SEED_LEDGER)
        assert len(entries) >= 4
        assert all(e.scenario == "default" for e in entries)
        assert {e.engine for e in entries} == {"default", "compiled"}
        reports = compare_ledger(entries)
        assert reports and all(r.ok for r in reports)

    def test_seed_ledger_renders(self):
        text = format_ledger(read_ledger(SEED_LEDGER))
        assert "perf ledger" in text
        assert "dominant phase" in text


class TestRendering:
    def test_format_entry_mentions_slowest_phases(self):
        entry = make_entry({"simulate": 0.3, "optimum": 0.1})
        entry.mem_peak_b = 2 << 20
        text = format_entry(entry)
        assert "simulate" in text and "abc1234" in text
        assert "2.0MiB" in text

    def test_format_empty_ledger(self):
        assert "empty" in format_ledger([])

    def test_compare_report_format_shows_verdict(self):
        base = make_entry({"simulate": 0.1}, wall=1.0)
        report = compare_entries(
            [base], make_entry({"simulate": 0.2}, wall=1.0)
        )
        text = report.format()
        assert "<< REGRESSION" in text
        assert "1 phase(s) regressed" in text

    def test_git_sha_in_repo(self):
        sha = git_sha()
        assert sha != "unknown" and len(sha) >= 7


class TestCli:
    """The end-to-end acceptance path through ``repro-eds perf``."""

    def _record(self, ledger: Path) -> int:
        return main([
            "perf", "record", "--ledger", str(ledger),
            "--scenario", "default", "--limit", "2", "--reps", "2",
            "--algorithms", "port_one",
        ])

    def test_back_to_back_records_compare_clean(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        assert self._record(ledger) == 0
        assert self._record(ledger) == 0
        code = main(["perf", "compare", "--ledger", str(ledger)])
        captured = capsys.readouterr()
        assert code == 0
        assert "no perf regressions" in captured.out

    def test_injected_slowdown_fails_compare(self, tmp_path, capsys):
        """Acceptance: a synthetic ≥25% slowdown appended to the ledger
        makes `perf compare` exit nonzero and name the phase."""
        ledger = tmp_path / "ledger.jsonl"
        assert self._record(ledger) == 0
        entries = read_ledger(ledger)
        slow = read_ledger(ledger)[-1]
        # Scale every phase well past both the +25% threshold and the
        # noise floor; re-stamp so it reads as a newer run.
        slow.phases = {k: v * 20 + 0.05 for k, v in slow.phases.items()}
        slow.unit_wall_s = slow.unit_wall_s * 20 + 0.05
        slow.recorded_unix += 60
        append_entry(ledger, slow)
        assert len(read_ledger(ledger)) == len(entries) + 1

        code = main(["perf", "compare", "--ledger", str(ledger)])
        captured = capsys.readouterr()
        assert code == 1
        assert "<< REGRESSION" in captured.out
        assert "VERDICT: perf regression" in captured.err

    def test_report_renders_trajectory(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        self._record(ledger)
        capsys.readouterr()
        assert main(["perf", "report", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "perf ledger" in out and "default" in out

    def test_compare_missing_ledger_errors(self, tmp_path, capsys):
        code = main([
            "perf", "compare", "--ledger", str(tmp_path / "none.jsonl"),
        ])
        assert code == 2
        assert "no perf ledger" in capsys.readouterr().err.lower()

    def test_compare_single_run_is_ok(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        self._record(ledger)
        code = main(["perf", "compare", "--ledger", str(ledger)])
        assert code == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_record_with_memory(self, tmp_path):
        ledger = tmp_path / "mem.jsonl"
        code = main([
            "perf", "record", "--ledger", str(ledger),
            "--scenario", "default", "--limit", "1", "--reps", "1",
            "--algorithms", "port_one", "--mem",
        ])
        assert code == 0
        (entry,) = read_ledger(ledger)
        assert entry.mem_peak_b and entry.mem_peak_b > 0
