"""Tests for the randomised model extension and randomised matching."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.randomized import RandomizedMaximalMatching
from repro.eds import is_edge_dominating_set, minimum_eds_size
from repro.matching import is_maximal_matching
from repro.portgraph import from_networkx, random_numbering
from repro.portgraph.numbering import factor_pairing_numbering
from repro.runtime.randomized import run_randomized

from tests.conftest import nx_graphs


class TestRandomizedMatching:
    def test_single_edge(self, path_graph_p2):
        result = run_randomized(path_graph_p2, RandomizedMaximalMatching)
        assert result.edge_set() == frozenset(path_graph_p2.edges)

    def test_breaks_cycle_symmetry(self):
        """The deterministic impossibility (§1.4) evaporates with coins:
        a symmetric cycle gets a maximal matching."""
        g = from_networkx(nx.cycle_graph(12), factor_pairing_numbering)
        result = run_randomized(g, RandomizedMaximalMatching, seed=3)
        m = result.edge_set()
        assert is_maximal_matching(g, m)
        assert 4 <= len(m) <= 6  # maximal matchings of C12

    def test_reproducible_given_seed(self):
        g = from_networkx(nx.cycle_graph(10), factor_pairing_numbering)
        a = run_randomized(g, RandomizedMaximalMatching, seed=7)
        b = run_randomized(g, RandomizedMaximalMatching, seed=7)
        assert a.outputs == b.outputs

    def test_different_seeds_explore_different_matchings(self):
        g = from_networkx(nx.cycle_graph(10), factor_pairing_numbering)
        outputs = {
            run_randomized(g, RandomizedMaximalMatching, seed=s).edge_set()
            for s in range(6)
        }
        assert len(outputs) > 1

    @settings(max_examples=30, deadline=None)
    @given(graph=nx_graphs(max_nodes=12), seed=st.integers(0, 10**6),
           numbering_seed=st.integers(0, 10**6))
    def test_always_maximal_matching(self, graph, seed, numbering_seed):
        g = from_networkx(graph, random_numbering(numbering_seed))
        result = run_randomized(g, RandomizedMaximalMatching, seed=seed)
        m = result.edge_set()
        assert is_maximal_matching(g, m)
        assert is_edge_dominating_set(g, m)

    @settings(max_examples=20, deadline=None)
    @given(graph=nx_graphs(max_nodes=9), seed=st.integers(0, 10**6))
    def test_two_approximation(self, graph, seed):
        g = from_networkx(graph)
        if g.num_edges == 0:
            return
        result = run_randomized(g, RandomizedMaximalMatching, seed=seed)
        assert len(result.edge_set()) <= 2 * minimum_eds_size(g)

    def test_round_count_small_in_practice(self):
        """Expected O(log n) phases; generous sanity ceiling."""
        g = from_networkx(
            nx.random_regular_graph(3, 64, seed=1), random_numbering(2)
        )
        result = run_randomized(g, RandomizedMaximalMatching, seed=5)
        assert result.rounds <= 40 * 3  # 40 phases of 3 rounds

    def test_isolated_nodes(self):
        g = from_networkx(nx.empty_graph(4))
        result = run_randomized(g, RandomizedMaximalMatching)
        assert result.edge_set() == frozenset()
