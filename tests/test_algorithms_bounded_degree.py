"""Tests for the Theorem 5 family A(Δ) (BoundedDegreeEDS).

These check feasibility and the 4 - 1/k guarantee on arbitrary random
bounded-degree graphs, plus the structural properties (a)-(c) from §7.3
that the proof relies on:

(a) M and P are node-disjoint, M is a matching, P is a 2-matching;
(b) every odd-degree node is covered by M or has an M-covered neighbour;
(c) every P edge joins two nodes of equal degree.
"""

from __future__ import annotations

from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BoundedDegreeEDS
from repro.eds import (
    bounded_degree_ratio,
    is_edge_dominating_set,
    minimum_eds_size,
)
from repro.exceptions import AlgorithmContractError
from repro.matching import covered_nodes, is_k_matching, is_matching
from repro.portgraph import from_networkx, random_numbering
from repro.runtime import run_anonymous

from tests.conftest import nx_graphs


def run_with_internals(graph, max_degree):
    """Run A(Δ) while keeping the per-node programs for inspection.

    The public output is the undifferentiated union D = M ∪ P; the proofs
    of §7.3 constrain M and P separately, so these tests read the split
    out of the node programs' internal state.
    """
    from repro.runtime.scheduler import _execute

    factory = BoundedDegreeEDS(max_degree)
    programs = {}
    for v in graph.nodes:
        prog = factory(graph.degree(v))
        if graph.degree(v) == 0 and not prog.halted:
            prog.halt(frozenset())
        programs[v] = prog
    result = _execute(graph, programs, 100_000, False)
    return result, programs


def m_and_p_edges(graph, programs):
    """Extract the M and P edge sets from program internals."""
    m_edges = set()
    p_edges = set()
    for v in graph.nodes:
        prog = programs[v]
        m_port = getattr(prog, "m_port", None)
        if m_port is not None:
            m_edges.add(graph.edge_at(v, m_port))
        for port in getattr(prog, "p_ports", ()):
            p_edges.add(graph.edge_at(v, port))
    return frozenset(m_edges), frozenset(p_edges)


def bounded_graphs(max_degree: int, max_nodes: int = 12):
    @st.composite
    def build(draw):
        graph = draw(nx_graphs(max_nodes=max_nodes, max_degree=max_degree))
        seed = draw(st.integers(0, 10**6))
        return from_networkx(graph, random_numbering(seed))

    return build()


class TestFactory:
    def test_invalid_delta_rejected(self):
        with pytest.raises(AlgorithmContractError):
            BoundedDegreeEDS(0)

    def test_degree_above_promise_rejected(self):
        factory = BoundedDegreeEDS(2)
        with pytest.raises(AlgorithmContractError):
            factory(3)

    def test_even_delta_uses_next_odd(self):
        assert BoundedDegreeEDS(4).odd_delta == 5
        assert BoundedDegreeEDS(5).odd_delta == 5

    def test_total_rounds_formula(self):
        assert BoundedDegreeEDS(1).total_rounds() == 1
        assert BoundedDegreeEDS(3).total_rounds() == 2 * 9 + 12


class TestDeltaOne:
    def test_outputs_every_edge(self):
        g = from_networkx(nx.Graph([(0, 1), (2, 3)]))
        result = run_anonymous(g, BoundedDegreeEDS(1))
        assert result.edge_set() == frozenset(g.edges)
        assert result.rounds == 1

    def test_optimal_on_matchings(self):
        g = from_networkx(nx.Graph([(0, 1), (2, 3), (4, 5)]))
        result = run_anonymous(g, BoundedDegreeEDS(1))
        assert len(result.edge_set()) == minimum_eds_size(g) == 3


class TestFeasibility:
    def test_path(self):
        g = from_networkx(nx.path_graph(7))
        result = run_anonymous(g, BoundedDegreeEDS(2))
        assert is_edge_dominating_set(g, result.edge_set())

    def test_cycle_even_degree_everywhere(self):
        """On 2-regular graphs phase I/II do nothing; phase III must
        dominate everything by itself."""
        g = from_networkx(nx.cycle_graph(9))
        result = run_anonymous(g, BoundedDegreeEDS(2))
        assert is_edge_dominating_set(g, result.edge_set())

    def test_star(self):
        g = from_networkx(nx.star_graph(5))
        result = run_anonymous(g, BoundedDegreeEDS(5))
        d = result.edge_set()
        assert is_edge_dominating_set(g, d)
        assert len(d) <= 3  # optimum is 1; ratio must stay within 7/2

    def test_complete_graph(self):
        g = from_networkx(nx.complete_graph(6))
        result = run_anonymous(g, BoundedDegreeEDS(5))
        assert is_edge_dominating_set(g, result.edge_set())

    def test_round_count_independent_of_n(self):
        counts = set()
        for n in (6, 12, 18):
            g = from_networkx(nx.random_regular_graph(3, n, seed=n))
            counts.add(run_anonymous(g, BoundedDegreeEDS(3)).rounds)
        assert len(counts) == 1
        assert counts.pop() == BoundedDegreeEDS(3).total_rounds()

    @settings(max_examples=40, deadline=None)
    @given(g=bounded_graphs(max_degree=4))
    def test_feasible_on_random_bounded_graphs(self, g):
        result = run_anonymous(g, BoundedDegreeEDS(4))
        assert is_edge_dominating_set(g, result.edge_set())

    @settings(max_examples=25, deadline=None)
    @given(g=bounded_graphs(max_degree=5, max_nodes=10))
    def test_feasible_delta5(self, g):
        result = run_anonymous(g, BoundedDegreeEDS(5))
        assert is_edge_dominating_set(g, result.edge_set())


class TestApproximationGuarantee:
    @settings(max_examples=30, deadline=None)
    @given(g=bounded_graphs(max_degree=3, max_nodes=10))
    def test_ratio_delta3(self, g):
        if g.num_edges == 0:
            return
        result = run_anonymous(g, BoundedDegreeEDS(3))
        optimum = minimum_eds_size(g)
        assert Fraction(len(result.edge_set()), optimum) <= bounded_degree_ratio(3)

    @settings(max_examples=25, deadline=None)
    @given(g=bounded_graphs(max_degree=4, max_nodes=10))
    def test_ratio_delta4(self, g):
        if g.num_edges == 0:
            return
        result = run_anonymous(g, BoundedDegreeEDS(4))
        optimum = minimum_eds_size(g)
        assert Fraction(len(result.edge_set()), optimum) <= bounded_degree_ratio(4)

    @settings(max_examples=20, deadline=None)
    @given(g=bounded_graphs(max_degree=5, max_nodes=9))
    def test_ratio_delta5(self, g):
        if g.num_edges == 0:
            return
        result = run_anonymous(g, BoundedDegreeEDS(5))
        optimum = minimum_eds_size(g)
        assert Fraction(len(result.edge_set()), optimum) <= bounded_degree_ratio(5)


class TestSectionSevenProperties:
    """Executable versions of properties (a)-(c) from §7.3."""

    @settings(max_examples=30, deadline=None)
    @given(g=bounded_graphs(max_degree=5, max_nodes=10))
    def test_property_a(self, g):
        """M is a matching, P a 2-matching, and they are node-disjoint."""
        result, programs = run_with_internals(g, 5)
        m_edges, p_edges = m_and_p_edges(g, programs)
        assert is_matching(m_edges)
        assert is_k_matching(p_edges, 2)
        assert not (covered_nodes(m_edges) & covered_nodes(p_edges))
        assert result.edge_set() == m_edges | p_edges

    @settings(max_examples=30, deadline=None)
    @given(g=bounded_graphs(max_degree=5, max_nodes=10))
    def test_property_b(self, g):
        """Every odd-degree node is covered by M or adjacent to one."""
        _, programs = run_with_internals(g, 5)
        m_edges, _ = m_and_p_edges(g, programs)
        m_nodes = covered_nodes(m_edges)
        for v in g.nodes:
            if g.degree(v) % 2 == 1:
                assert v in m_nodes or any(
                    u in m_nodes for u in g.neighbours(v)
                ), f"property (b) fails at {v!r}"

    @settings(max_examples=30, deadline=None)
    @given(g=bounded_graphs(max_degree=5, max_nodes=10))
    def test_property_c(self, g):
        """Every P edge joins two nodes of the same degree."""
        _, programs = run_with_internals(g, 5)
        _, p_edges = m_and_p_edges(g, programs)
        for e in p_edges:
            assert g.degree(e.u) == g.degree(e.v), (
                f"property (c) fails on {e!r}"
            )

    @settings(max_examples=25, deadline=None)
    @given(g=bounded_graphs(max_degree=4, max_nodes=10))
    def test_phase3_dominates_h(self, g):
        """P dominates every edge not covered by M (§7.2 feasibility)."""
        _, programs = run_with_internals(g, 4)
        m_edges, p_edges = m_and_p_edges(g, programs)
        m_nodes = covered_nodes(m_edges)
        p_nodes = covered_nodes(p_edges)
        for e in g.edges:
            if not (e.endpoints & m_nodes):
                assert e.endpoints & p_nodes, (
                    f"edge {e!r} in H is not dominated by P"
                )
