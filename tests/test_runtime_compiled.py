"""Differential tests: the compiled scheduler against the legacy reference.

The compiled flat-array round loop (and the batch-stepping programs
layered on it) must be *observationally identical* to the legacy
dict-based scheduler: same outputs, same round counts, and the same
full message traces.  This suite asserts exactly that across every
registered simulator-driven algorithm × every plain graph family at two
sizes, plus the structural edge cases (loops, parallel edges, degree-0
nodes, the empty graph) — and pins the engine contract that the rewrite
left every content address and cached record byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.engine.cache import ResultCache, cache_key
from repro.engine.executor import execute_unit, run_units
from repro.engine.spec import GraphSpec, JobSpec
from repro.portgraph import PortGraphBuilder
from repro.registry.algorithms import algorithm_names, get_algorithm
from repro.registry.families import family_names, get_family
from repro.runtime import (
    ENGINES,
    NodeProgram,
    run_anonymous,
    use_engine,
    vector_available,
)
from repro.runtime.scheduler import _resolve_engine

FIXTURES = Path(__file__).parent / "data"

#: Two instances per plain (non-lower-bound, non-artifact) family.
FAMILY_INSTANCES: dict[str, tuple[dict, dict]] = {
    "regular": ({"d": 3, "n": 10}, {"d": 4, "n": 16}),
    "pairing_regular": ({"d": 3, "n": 8}, {"d": 4, "n": 9}),
    "cycle": ({"n": 5}, {"n": 12}),
    "complete": ({"n": 4}, {"n": 7}),
    "hypercube": ({"dim": 2}, {"dim": 3}),
    "torus": ({"rows": 3, "cols": 3}, {"rows": 3, "cols": 5}),
    "crown": ({"k": 3}, {"k": 5}),
    "matching_union": ({"pairs": 2}, {"pairs": 5}),
    "bounded": ({"n": 10, "max_degree": 3}, {"n": 18, "max_degree": 5}),
    "path": ({"n": 4}, {"n": 11}),
    "grid": ({"rows": 2, "cols": 4}, {"rows": 3, "cols": 4}),
    "tree": ({"n": 8}, {"n": 15}),
    "star": ({"leaves": 3}, {"leaves": 7}),
    "caterpillar": ({"spine": 3, "legs": 1}, {"spine": 4, "legs": 2}),
}

#: Families the matrix deliberately skips: adversarial constructions
#: (driven through the adversary confrontation, not plain runs) and the
#: figure-artifact pseudo-family.
EXCLUDED_FAMILIES = {"lower_bound_even", "lower_bound_odd", "figure"}

#: ``central`` algorithms never enter the scheduler.
SIMULATED_MODELS = {"anonymous", "identified", "randomized"}


def simulated_algorithms() -> list[str]:
    # Built-ins only: examples and plugin tests register extra names in
    # the process-wide registry, and the matrix must not depend on which
    # test module ran first.
    return [
        name
        for name in algorithm_names()
        if get_algorithm(name).model in SIMULATED_MODELS
        and get_algorithm(name).origin.startswith("repro.")
    ]


def build(family: str, params: dict):
    seed = 7 if "seed" not in params else params["seed"]
    return get_family(family).make(params, seed)


def candidate_engines() -> list[str]:
    """Every engine the differential matrix must hold against the
    legacy reference.  ``vector`` joins only when numpy is installed —
    the no-numpy CI job runs the same suite and must stay green
    (``auto`` is always testable: it degrades to ``compiled``)."""
    engines = ["compiled", "pernode", "auto"]
    if vector_available():
        engines.insert(1, "vector")
    return engines


def traced_run(name: str, graph, engine: str):
    bound = get_algorithm(name).resolve(rng_seed=11)
    assert bound.traced is not None
    with use_engine(engine):
        return bound.traced(graph)


def assert_identical(reference, candidate, context: str) -> None:
    assert candidate.outputs == reference.outputs, f"{context}: outputs"
    assert candidate.rounds == reference.rounds, f"{context}: rounds"
    assert candidate.trace == reference.trace, f"{context}: trace"


class TestMatrixCoverage:
    def test_every_plain_family_has_instances(self):
        builtin = {
            name
            for name in family_names()
            if getattr(
                get_family(name).build, "__module__", ""
            ).startswith("repro.")
        }
        assert builtin - EXCLUDED_FAMILIES == set(FAMILY_INSTANCES), (
            "a graph family joined the registry without differential "
            "coverage; add instances to FAMILY_INSTANCES"
        )

    def test_simulated_algorithms_nonempty(self):
        names = simulated_algorithms()
        # the paper algorithms, the baselines, and the id/randomized ones
        assert {"port_one", "regular_odd", "bounded_degree",
                "ids_greedy", "randomized_matching"} <= set(names)


@pytest.mark.parametrize("family", sorted(FAMILY_INSTANCES))
@pytest.mark.parametrize("which", [0, 1])
def test_differential_full_matrix(family: str, which: int):
    """Compiled (and batch) runs equal the legacy reference everywhere."""
    graph = build(family, FAMILY_INSTANCES[family][which])
    for name in simulated_algorithms():
        reference = traced_run(name, graph, "legacy")
        for engine in candidate_engines():
            candidate = traced_run(name, graph, engine)
            assert_identical(
                reference, candidate, f"{name} on {family}#{which} ({engine})"
            )


class TestEdgeCases:
    """Loops, parallel edges, degree-0 nodes, and the empty graph."""

    def _multigraph(self):
        builder = PortGraphBuilder()
        builder.add_nodes({"a": 3, "b": 5})
        builder.connect("a", 1, "a", 2)  # loop
        builder.connect("a", 3, "b", 1)
        builder.connect("b", 2, "b", 3)  # loop
        builder.connect("b", 4, "b", 5)  # second loop
        return builder.build()

    def _parallel_edges(self):
        builder = PortGraphBuilder()
        builder.add_nodes({"u": 2, "v": 2})
        builder.connect("u", 1, "v", 2)
        builder.connect("u", 2, "v", 1)
        return builder.build()

    def _with_isolated(self):
        builder = PortGraphBuilder()
        builder.add_nodes({"u": 1, "v": 1, "w": 0})
        builder.connect("u", 1, "v", 1)
        return builder.build()

    def _empty(self):
        builder = PortGraphBuilder()
        builder.add_nodes({"x": 0, "y": 0})
        return builder.build()

    @pytest.mark.parametrize(
        "name", ["port_one", "regular_odd", "bounded_degree", "ids_greedy"]
    )
    def test_structural_edge_cases(self, name: str):
        for tag, graph in (
            ("multigraph", self._multigraph()),
            ("parallel", self._parallel_edges()),
            ("isolated", self._with_isolated()),
            ("empty", self._empty()),
        ):
            reference = traced_run(name, graph, "legacy")
            for engine in candidate_engines():
                candidate = traced_run(name, graph, engine)
                assert_identical(
                    reference, candidate, f"{name} on {tag} ({engine})"
                )

    def test_empty_graph_zero_rounds(self):
        result = run_anonymous(
            self._empty(), lambda degree: _NeverSends(degree)
        )
        assert result.rounds == 0
        assert result.outputs == {"x": frozenset(), "y": frozenset()}


class _NeverSends(NodeProgram):
    def send(self, rnd):
        return {}

    def receive(self, rnd, inbox):
        self.halt()


class _ChattyLeafHalter(NodeProgram):
    """Degree-1 nodes halt after round 0; others keep sending to them."""

    def send(self, rnd):
        return {i: "ping" for i in range(1, self.degree + 1)}

    def receive(self, rnd, inbox):
        if self.degree == 1 or rnd >= 2:
            self.halt()


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("compiled", "vector", "auto", "pernode", "legacy")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            _resolve_engine("vectorised")

    def test_use_engine_restores(self):
        assert _resolve_engine(None) == "compiled"
        with use_engine("legacy"):
            assert _resolve_engine(None) == "legacy"
        assert _resolve_engine(None) == "compiled"

    def test_explicit_engine_beats_override(self, triangle):
        with use_engine("legacy"):
            result = run_anonymous(
                triangle, _NeverSends, engine="compiled", record_trace=True
            )
        assert result.rounds == 1


class TestDroppedSends:
    """Satellite: sends to halted nodes are recorded *and* flagged."""

    def _star(self):
        builder = PortGraphBuilder()
        builder.add_nodes({"hub": 3, "l1": 1, "l2": 1, "l3": 1})
        for i, leaf in enumerate(("l1", "l2", "l3"), start=1):
            builder.connect("hub", i, leaf, 1)
        return builder.build()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_dropped_flagged_consistently(self, engine: str):
        if engine == "vector" and not vector_available():
            pytest.skip("numpy not installed")
        result = run_anonymous(
            self._star(), _ChattyLeafHalter,
            record_trace=True, engine=engine,
        )
        trace = result.trace
        # round 0: all 6 sends delivered; rounds 1-2: the hub's 3 sends
        # are dropped (leaves halted in round 0)
        assert trace.rounds[0].dropped_count == 0
        assert trace.rounds[1].dropped_count == 3
        assert trace.rounds[1].delivered_count == 0
        assert all(m.dropped for m in trace.rounds[1].messages)
        # the historical count keeps counting dropped sends (cache
        # stability); the delivered view subtracts them
        assert trace.total_messages == 12
        assert trace.total_dropped == 6
        assert trace.total_delivered == 6
        assert "dropped (sent to halted nodes): 6" in trace.summary()

    def test_no_drops_no_summary_line(self, triangle):
        result = run_anonymous(triangle, _NeverSends, record_trace=True)
        assert result.trace.total_dropped == 0
        assert "dropped" not in result.trace.summary()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_strict_delivery_raises_on_every_engine(self, engine: str):
        from repro.exceptions import SimulationError

        if engine == "vector" and not vector_available():
            pytest.skip("numpy not installed")
        with pytest.raises(SimulationError, match="sent to halted node"):
            run_anonymous(
                self._star(), _ChattyLeafHalter,
                strict_delivery=True, engine=engine,
            )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_strict_delivery_batch_path(self, engine: str):
        """ids_greedy halts nodes at different times, so its *batch*
        routing (not just the per-node fallback) must honour strict
        delivery with the same error shape as the reference."""
        from repro.algorithms.maximal_matching_ids import (
            GreedyMaximalMatchingIds,
        )
        from repro.exceptions import SimulationError
        from repro.runtime import run_identified

        if engine == "vector" and not vector_available():
            pytest.skip("numpy not installed")
        graph = build("regular", {"d": 3, "n": 8})
        with pytest.raises(SimulationError, match="sent to halted node"):
            run_identified(
                graph, GreedyMaximalMatchingIds,
                strict_delivery=True, engine=engine,
            )


class TestCacheStability:
    """Records and content addresses written before the rewrite must
    survive it: same keys, same bytes, warm caches keep hitting."""

    def fixture_entries(self):
        with (FIXTURES / "pre_refactor_records.json").open() as handle:
            return json.load(handle)

    def test_keys_unchanged(self):
        for entry in self.fixture_entries():
            spec = JobSpec.from_json_dict(entry["spec"])
            assert cache_key(spec) == entry["key"]

    def test_records_reproduced_bit_for_bit(self):
        for entry in self.fixture_entries():
            spec = JobSpec.from_json_dict(entry["spec"])
            assert execute_unit(spec).to_json_dict() == entry["record"]

    def test_records_reproduced_with_vector_engine(self):
        """Cache keys and record bytes are engine-independent: the same
        units recomputed under the vector engine reproduce the
        pre-refactor records bit for bit."""
        if not vector_available():
            pytest.skip("numpy not installed")
        with use_engine("vector"):
            for entry in self.fixture_entries():
                spec = JobSpec.from_json_dict(entry["spec"])
                assert cache_key(spec) == entry["key"]
                assert execute_unit(spec).to_json_dict() == entry["record"]

    def test_pre_refactor_cache_entry_hits(self, tmp_path):
        entries = self.fixture_entries()
        cache = ResultCache(tmp_path / "cache")
        for entry in entries:
            cache.put(entry["key"], entry["record"])
        specs = [JobSpec.from_json_dict(e["spec"]) for e in entries]
        report = run_units(specs, cache=cache)
        assert report.cache_hits == len(entries)
        assert report.computed == 0
        assert [r.to_json_dict() for r in report.records] == [
            e["record"] for e in entries
        ]


class TestThreadHintedMeasure:
    """Satellite: ``comparison-mt`` gives ``preferred_backend="thread"``
    its promised real consumer — the auto backend must actually pick the
    thread pool, and results must match the inline run."""

    def _units(self):
        return [
            JobSpec(
                algorithm="port_one",
                graph=GraphSpec.make("regular", d=3, n=10, seed=s),
                measure="comparison-mt",
            )
            for s in range(3)
        ]

    def test_auto_selects_thread_backend(self):
        report = run_units(self._units(), workers=2, backend="auto")
        assert report.backend == "auto:thread(workers=2)"
        assert "prefer thread" in report.calibration

    def test_results_identical_to_inline(self):
        threaded = run_units(self._units(), workers=2, backend="auto")
        inline = run_units(self._units(), backend="inline")
        assert [r.to_json_dict() for r in threaded.records] == [
            r.to_json_dict() for r in inline.records
        ]

    def test_same_numbers_as_comparison_measure(self):
        mt = run_units(self._units(), backend="inline").records
        plain = run_units(
            [
                JobSpec(
                    algorithm="port_one",
                    graph=GraphSpec.make("regular", d=3, n=10, seed=s),
                    measure="comparison",
                )
                for s in range(3)
            ],
            backend="inline",
        ).records
        for a, b in zip(mt, plain):
            assert (a.solution_size, a.rounds, a.messages) == (
                b.solution_size, b.rounds, b.messages
            )
