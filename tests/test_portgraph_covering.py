"""Tests for covering maps, quotients, and random lifts (paper §2.3)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CoveringMapError, QuotientError
from repro.portgraph import (
    PortGraphBuilder,
    PortNumberedGraph,
    from_networkx,
    is_covering_map,
    quotient_by_partition,
    random_lift,
    verify_covering_map,
)
from repro.portgraph.numbering import factor_pairing_numbering

from tests.conftest import port_graphs


def single_node_quotient(d: int) -> PortNumberedGraph:
    """The one-node multigraph with p(x, 2i-1) = (x, 2i) (paper §3.3)."""
    b = PortGraphBuilder()
    b.add_node("x", d)
    for i in range(1, d // 2 + 1):
        b.connect("x", 2 * i - 1, "x", 2 * i)
    return b.build()


class TestVerifyCoveringMap:
    def test_identity_is_covering(self, triangle):
        verify_covering_map(triangle, triangle, {v: v for v in triangle.nodes})

    def test_cycle_covers_single_node(self):
        cover = from_networkx(nx.cycle_graph(6), factor_pairing_numbering)
        base = single_node_quotient(2)
        f = {v: "x" for v in cover.nodes}
        verify_covering_map(cover, base, f)

    def test_wrong_degree_rejected(self, triangle, path_graph_p2):
        f = {v: "u" for v in triangle.nodes}
        with pytest.raises(CoveringMapError):
            verify_covering_map(triangle, path_graph_p2, f)

    def test_not_surjective_rejected(self, triangle):
        f = {v: v for v in triangle.nodes}
        bigger = from_networkx(nx.complete_graph(4))
        with pytest.raises(CoveringMapError):
            verify_covering_map(triangle, bigger, f)

    def test_undefined_node_rejected(self, triangle):
        with pytest.raises(CoveringMapError):
            verify_covering_map(triangle, triangle, {})

    def test_connection_violation_rejected(self):
        # Two disjoint edges "cover" one edge only if port numbers line up.
        b = PortGraphBuilder()
        b.add_nodes({"u1": 1, "v1": 1, "u2": 2, "v2": 2})
        b.connect("u1", 1, "v1", 1)
        b.connect("u2", 1, "v2", 2)
        b.connect("u2", 2, "v2", 1)
        cover = b.build()

        base = PortGraphBuilder()
        base.add_nodes({"u": 1, "v": 1})
        base.connect("u", 1, "v", 1)
        base_g = base.build()

        f = {"u1": "u", "v1": "v", "u2": "u", "v2": "v"}
        with pytest.raises(CoveringMapError):
            verify_covering_map(cover, base_g, f)

    def test_is_covering_map_boolean(self, triangle):
        assert is_covering_map(triangle, triangle, {v: v for v in triangle.nodes})
        assert not is_covering_map(triangle, triangle, {})


class TestQuotient:
    def test_cycle_quotient_to_single_node(self):
        cover = from_networkx(nx.cycle_graph(4), factor_pairing_numbering)
        quotient, f = quotient_by_partition(
            cover, {v: "x" for v in cover.nodes}
        )
        assert quotient == single_node_quotient(2)
        assert set(f.values()) == {"x"}

    def test_inconsistent_partition_rejected(self):
        g = from_networkx(nx.path_graph(3))
        with pytest.raises(QuotientError):
            quotient_by_partition(g, {v: "x" for v in g.nodes})

    def test_mixed_degree_block_rejected(self):
        g = from_networkx(nx.path_graph(3))
        with pytest.raises(QuotientError):
            quotient_by_partition(g, {0: "a", 1: "a", 2: "b"})

    def test_partition_must_cover_nodes(self, triangle):
        with pytest.raises(QuotientError):
            quotient_by_partition(triangle, {})

    def test_trivial_partition_is_identity(self, triangle):
        quotient, f = quotient_by_partition(
            triangle, {v: v for v in triangle.nodes}
        )
        assert quotient == triangle


class TestRandomLift:
    def test_fold_must_be_positive(self, triangle):
        with pytest.raises(CoveringMapError):
            random_lift(triangle, 0)

    def test_lift_sizes(self, triangle):
        lift, f = random_lift(triangle, 3, seed=1)
        assert lift.num_nodes == 9
        assert lift.num_edges == 9

    def test_lift_of_multigraph_with_loops(self, multigraph_m):
        lift, f = random_lift(multigraph_m, 4, seed=5)
        assert lift.num_nodes == 8
        verify_covering_map(lift, multigraph_m, f)

    def test_lift_is_verified_covering(self):
        base = single_node_quotient(4)
        lift, f = random_lift(base, 5, seed=9)
        verify_covering_map(lift, base, f)
        assert lift.regularity() == 4


@settings(max_examples=30, deadline=None)
@given(g=port_graphs(max_nodes=7), fold=st.integers(2, 4),
       seed=st.integers(0, 10**6))
def test_random_lift_always_verifies(g, fold, seed):
    lift, f = random_lift(g, fold, seed=seed)
    verify_covering_map(lift, g, f)
    assert lift.num_nodes == fold * g.num_nodes


@settings(max_examples=30, deadline=None)
@given(g=port_graphs(max_nodes=7), fold=st.integers(2, 3),
       seed=st.integers(0, 10**6))
def test_lift_then_quotient_recovers_base(g, fold, seed):
    lift, f = random_lift(g, fold, seed=seed)
    quotient, _ = quotient_by_partition(lift, f)
    assert quotient == g
