"""Tests for the Chrome trace-event / Perfetto exporter.

The acceptance criterion for this subsystem is that a ``--trace-format
perfetto`` sidecar *validates against the Chrome trace-event schema*:
every event carries the keys its phase type requires with the right
types, the document is the JSON object form with ``traceEvents``, and
the per-worker sequential layout never overlaps unit envelopes.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.cli import main
from repro.engine import SweepGrid
from repro.obs import (
    PERFETTO_VERSION,
    TRACE_FORMATS,
    telemetry,
    trace_events,
    write_perfetto,
)

GRID = SweepGrid(
    name="perfetto-test",
    algorithms=("port_one", "bounded_degree"),
    family="regular",
    degrees=(2, 3),
    sizes=(12,),
    seeds=1,
)


def units():
    return GRID.expand()


@pytest.fixture(scope="module")
def session():
    with telemetry() as sess:
        api.run_sweep(units(), cache=None, backend="inline")
    return sess


def validate_chrome_trace(document: dict) -> list[dict]:
    """Assert *document* conforms to the Chrome trace-event JSON object
    format; returns the event list for further inspection."""
    assert isinstance(document, dict)
    assert isinstance(document["traceEvents"], list)
    assert document["displayTimeUnit"] in ("ms", "ns")
    for event in document["traceEvents"]:
        assert isinstance(event["name"], str) and event["name"]
        ph = event["ph"]
        assert ph in ("X", "M", "C")
        assert isinstance(event["pid"], int)
        assert isinstance(event.get("args", {}), dict)
        if ph == "X":  # complete event: timestamped + duration, on a thread
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 1
            assert isinstance(event["tid"], int)
            assert isinstance(event["cat"], str)
        elif ph == "M":  # metadata
            assert event["name"] in ("process_name", "thread_name")
            assert "name" in event["args"]
        elif ph == "C":  # counter: timestamped numeric series
            assert isinstance(event["ts"], int)
            for value in event["args"].values():
                assert isinstance(value, (int, float))
    return document["traceEvents"]


class TestTraceEvents:
    def test_events_validate_against_schema(self, session):
        events = trace_events(session)
        validate_chrome_trace({
            "traceEvents": events, "displayTimeUnit": "ms",
        })

    def test_every_unit_has_envelope_and_phases(self, session):
        events = trace_events(session)
        unit_events = [e for e in events if e.get("cat") == "unit"]
        assert len(unit_events) == len(units())
        phase_events = [e for e in events if e.get("cat") == "phase"]
        names = {e["name"] for e in phase_events}
        assert "simulate" in names and "graph_build" in names

    def test_metadata_names_every_worker_track(self, session):
        events = trace_events(session)
        meta = [e for e in events if e["ph"] == "M"]
        pids_with_names = {
            e["pid"] for e in meta if e["name"] == "process_name"
        }
        event_pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert event_pids <= pids_with_names

    def test_counter_tracks_present(self, session):
        events = trace_events(session)
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "rounds" in counters and "messages" in counters

    def test_sequential_layout_never_overlaps_per_worker(self, session):
        events = trace_events(session)
        by_track: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for e in events:
            if e.get("cat") == "unit":
                by_track.setdefault((e["pid"], e["tid"]), []).append(
                    (e["ts"], e["dur"])
                )
        assert by_track
        for intervals in by_track.values():
            intervals.sort()
            for (ts_a, dur_a), (ts_b, _) in zip(intervals, intervals[1:]):
                assert ts_a + dur_a <= ts_b

    def test_phase_spans_stay_inside_unit_envelope(self, session):
        events = trace_events(session)
        # Group by track; every phase event must start at or after the
        # enclosing unit event on that track.
        units_by_track: dict[tuple[int, int], list[dict]] = {}
        for e in events:
            if e.get("cat") == "unit":
                units_by_track.setdefault((e["pid"], e["tid"]), []).append(e)
        for e in events:
            if e.get("cat") != "phase":
                continue
            track = units_by_track[(e["pid"], e["tid"])]
            assert any(u["ts"] <= e["ts"] for u in track)


class TestMemoryInTrace:
    def test_bytes_counter_only_with_memory_capture(self):
        with telemetry(capture_memory=True) as sess:
            api.run_sweep(units()[:2], cache=None, backend="inline")
        events = trace_events(sess)
        byte_counters = [
            e for e in events if e["ph"] == "C" and e["name"] == "bytes"
        ]
        assert len(byte_counters) == 2
        assert all(e["args"]["traced_peak"] > 0 for e in byte_counters)
        unit_events = [e for e in events if e.get("cat") == "unit"]
        assert all("mem_peak_b" in e["args"] for e in unit_events)

        with telemetry() as plain:
            api.run_sweep(units()[:1], cache=None, backend="inline")
        assert not any(
            e["name"] == "bytes" for e in trace_events(plain)
        )


class TestWritePerfetto:
    def test_document_round_trips_and_validates(self, session, tmp_path):
        path = tmp_path / "trace.pft.json"
        count = write_perfetto(path, session, meta={"command": "test"})
        document = json.loads(path.read_text())
        events = validate_chrome_trace(document)
        assert len(events) == count
        other = document["otherData"]
        assert other["exporter"] == "repro.obs.perfetto"
        assert other["version"] == str(PERFETTO_VERSION)
        assert other["command"] == "test"

    def test_empty_session_writes_valid_document(self, tmp_path):
        with telemetry() as sess:
            pass
        path = tmp_path / "empty.json"
        assert write_perfetto(path, sess) == 0
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []


class TestCliIntegration:
    def test_trace_formats_constant_matches_cli(self):
        assert TRACE_FORMATS == ("jsonl", "perfetto")

    def test_profile_writes_perfetto_sidecar(self, tmp_path, caplog):
        """Acceptance: `--trace-format perfetto` produces a sidecar that
        validates against the Chrome trace-event schema."""
        trace = tmp_path / "profile.pft.json"
        with caplog.at_level("INFO", logger="repro.cli"):
            code = main([
                "profile", "--scenario", "default", "--limit", "2",
                "--backend", "inline", "--no-cache",
                "--trace", str(trace), "--trace-format", "perfetto",
            ])
        assert code == 0
        events = validate_chrome_trace(json.loads(trace.read_text()))
        assert any(e.get("cat") == "unit" for e in events)
        assert "perfetto trace" in caplog.text

    def test_sweep_supports_perfetto_with_mem(self, tmp_path, capsys):
        trace = tmp_path / "sweep.pft.json"
        code = main([
            "sweep", "--degrees", "2", "--sizes", "12", "--seeds", "1",
            "--no-cache", "--backend", "inline", "--quiet",
            "--algorithms", "port_one",
            "--trace", str(trace), "--trace-format", "perfetto", "--mem",
        ])
        assert code == 0
        events = validate_chrome_trace(json.loads(trace.read_text()))
        assert any(
            e["ph"] == "C" and e["name"] == "bytes" for e in events
        )

    def test_default_format_stays_jsonl(self, tmp_path):
        trace = tmp_path / "default.jsonl"
        code = main([
            "sweep", "--degrees", "2", "--sizes", "12", "--seeds", "1",
            "--no-cache", "--backend", "inline", "--quiet",
            "--algorithms", "port_one", "--trace", str(trace),
        ])
        assert code == 0
        lines = trace.read_text().splitlines()
        # JSONL: one object per line, not a single trace document.
        assert len(lines) > 1
        assert all(json.loads(line) for line in lines)
