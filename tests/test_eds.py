"""Tests for the EDS substrate: properties, exact solver, bounds."""

from __future__ import annotations

from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.eds import (
    bounded_degree_ratio,
    brute_force_minimum_eds_size,
    dominated_edges,
    dominates,
    domination_deficiency,
    eds_lower_bound,
    is_edge_dominating_set,
    maximum_matching_size,
    minimum_eds_size,
    minimum_edge_dominating_set,
    regular_ratio,
    two_approx_eds,
    undominated_edges,
)
from repro.exceptions import AlgorithmContractError
from repro.matching import is_maximal_matching
from repro.portgraph import from_networkx

from tests.conftest import port_graphs


def edges_by_pairs(graph, pairs):
    index = {e.endpoints: e for e in graph.edges}
    return frozenset(index[frozenset(p)] for p in pairs)


class TestProperties:
    def test_dominates_adjacent_and_self(self):
        g = from_networkx(nx.path_graph(3))
        e01, e12 = sorted(g.edges, key=lambda e: repr(e))
        assert dominates(e01, e01)
        assert dominates(e01, e12)

    def test_middle_edge_dominates_path4(self):
        g = from_networkx(nx.path_graph(4))
        middle = edges_by_pairs(g, [(1, 2)])
        assert is_edge_dominating_set(g, middle)
        assert dominated_edges(g, middle) == frozenset(g.edges)
        assert domination_deficiency(g, middle) == 0

    def test_end_edge_not_dominating_path4(self):
        g = from_networkx(nx.path_graph(4))
        end = edges_by_pairs(g, [(0, 1)])
        assert not is_edge_dominating_set(g, end)
        assert len(undominated_edges(g, end)) == 1
        assert domination_deficiency(g, end) == 1

    def test_empty_set_dominates_empty_graph(self):
        g = from_networkx(nx.empty_graph(4))
        assert is_edge_dominating_set(g, frozenset())

    def test_figure1_style_examples(self):
        """Figure 1: an EDS need not be a matching; a maximal matching is
        an EDS; minima coincide."""
        g = from_networkx(nx.path_graph(5))
        # adjacent pair (1,2),(2,3) is an EDS that is not a matching
        eds = edges_by_pairs(g, [(1, 2), (2, 3)])
        assert is_edge_dominating_set(g, eds)
        from repro.matching import is_matching

        assert not is_matching(eds)
        # minimum for P5 (4 edges) is 2
        assert minimum_eds_size(g) == 2


class TestArrayFastPath:
    """The compiled-array feasibility check must agree with the
    set-based definition on every subset, including loops and graphs
    whose arrays exist up front (the direct-to-CSR families)."""

    def graphs(self):
        from repro.generators.pairing import pairing_regular
        from repro.generators.regular import cycle, torus

        star = from_networkx(nx.star_graph(4))
        star.compiled()  # attach arrays so the fast path engages
        return [cycle(7), torus(3, 3), pairing_regular(3, 8, seed=1), star]

    def test_matches_set_semantics_on_all_small_subsets(self):
        from itertools import combinations

        from repro.eds.properties import _is_eds_arrays

        for graph in self.graphs():
            edges = list(graph.edges)
            for k in range(0, min(3, len(edges)) + 1):
                for subset in combinations(edges, k):
                    expected = not undominated_edges(graph, subset)
                    assert is_edge_dominating_set(graph, subset) == expected
                    fast = _is_eds_arrays(graph, subset)
                    assert fast is None or fast == expected

    def test_declines_without_compiled_arrays(self):
        from repro.eds.properties import _is_eds_arrays

        g = from_networkx(nx.path_graph(4))
        assert getattr(g, "_compiled", None) is None
        assert _is_eds_arrays(g, []) is None
        assert not is_edge_dominating_set(g, [])

    def test_foreign_endpoints_cover_nothing(self):
        from repro.portgraph.ports import PortEdge

        g = self.graphs()[0]  # cycle(7), arrays attached
        foreign = PortEdge.make(100, 1, 200, 1)
        assert not is_edge_dominating_set(g, [foreign])


class TestExact:
    def test_minimum_is_maximal_matching(self):
        g = from_networkx(nx.petersen_graph())
        d = minimum_edge_dominating_set(g)
        assert is_maximal_matching(g, d)
        assert is_edge_dominating_set(g, d)

    def test_known_small_values(self):
        assert minimum_eds_size(from_networkx(nx.star_graph(7))) == 1
        assert minimum_eds_size(from_networkx(nx.cycle_graph(6))) == 2
        assert minimum_eds_size(from_networkx(nx.cycle_graph(9))) == 3
        assert minimum_eds_size(from_networkx(nx.complete_graph(4))) == 2
        assert minimum_eds_size(from_networkx(nx.path_graph(2))) == 1

    @settings(max_examples=25, deadline=None)
    @given(g=port_graphs(max_nodes=7))
    def test_matching_search_equals_subset_search(self, g):
        """Minimum over maximal matchings == minimum over arbitrary edge
        sets (the Yannakakis-Gavril equivalence, paper §1.1)."""
        if g.num_edges > 10:
            return
        assert minimum_eds_size(g) == brute_force_minimum_eds_size(g)


class TestTwoApprox:
    @settings(max_examples=30, deadline=None)
    @given(g=port_graphs(max_nodes=8))
    def test_greedy_within_factor_two(self, g):
        if g.num_edges == 0:
            return
        approx = two_approx_eds(g)
        assert is_edge_dominating_set(g, approx)
        assert len(approx) <= 2 * minimum_eds_size(g)


class TestBounds:
    def test_regular_ratio_values(self):
        assert regular_ratio(1) == 1
        assert regular_ratio(2) == 3
        assert regular_ratio(3) == Fraction(5, 2)
        assert regular_ratio(4) == Fraction(7, 2)
        assert regular_ratio(5) == 3
        assert regular_ratio(6) == Fraction(11, 3)
        assert regular_ratio(7) == Fraction(13, 4)

    def test_regular_ratio_monotone_within_parity(self):
        evens = [regular_ratio(d) for d in range(2, 20, 2)]
        odds = [regular_ratio(d) for d in range(1, 20, 2)]
        assert evens == sorted(evens)
        assert odds == sorted(odds)
        assert all(r < 4 for r in evens + odds)

    def test_bounded_degree_ratio_values(self):
        assert bounded_degree_ratio(1) == 1
        assert bounded_degree_ratio(2) == 3
        assert bounded_degree_ratio(3) == 3
        assert bounded_degree_ratio(4) == Fraction(7, 2)
        assert bounded_degree_ratio(5) == Fraction(7, 2)
        assert bounded_degree_ratio(6) == Fraction(11, 3)

    def test_bounded_matches_paper_formulas(self):
        # paper: 4 - 2/(Δ-1) for odd Δ >= 3, 4 - 2/Δ for even Δ
        for delta in range(3, 21, 2):
            assert bounded_degree_ratio(delta) == Fraction(4) - Fraction(
                2, delta - 1
            )
        for delta in range(2, 21, 2):
            assert bounded_degree_ratio(delta) == Fraction(4) - Fraction(
                2, delta
            )

    def test_bad_parameters_rejected(self):
        with pytest.raises(AlgorithmContractError):
            regular_ratio(0)
        with pytest.raises(AlgorithmContractError):
            bounded_degree_ratio(0)

    def test_matching_size(self):
        assert maximum_matching_size(from_networkx(nx.path_graph(4))) == 2
        assert maximum_matching_size(from_networkx(nx.cycle_graph(5))) == 2

    @settings(max_examples=25, deadline=None)
    @given(g=port_graphs(max_nodes=8))
    def test_lower_bound_is_sound(self, g):
        if g.num_edges > 12:
            return
        assert eds_lower_bound(g) <= minimum_eds_size(g)

    def test_lower_bound_empty(self):
        assert eds_lower_bound(from_networkx(nx.empty_graph(3))) == 0
