"""Exhaustive verification over ALL port numberings of small graphs.

Random testing samples the numbering space; for tiny graphs we can
enumerate it completely.  For every port numbering of each base graph we
check Lemma 1, Lemma 2, the feasibility and guarantee of the applicable
algorithms, and the §2.2 consistency of their outputs — leaving no
adversarial numbering untested at these sizes.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import permutations, product

import networkx as nx
import pytest

from repro.algorithms import BoundedDegreeEDS, PortOneEDS, RegularOddEDS
from repro.eds import (
    bounded_degree_ratio,
    is_edge_dominating_set,
    minimum_eds_size,
    regular_ratio,
)
from repro.portgraph import (
    all_matchings,
    distinguishable_neighbour,
    from_neighbour_orders,
)
from repro.runtime import run_anonymous


def all_numberings(graph: nx.Graph):
    """Yield every port numbering of *graph* (product of permutations)."""
    nodes = sorted(graph.nodes)
    neighbour_orders = [
        list(permutations(sorted(graph.neighbors(v)))) for v in nodes
    ]
    for combo in product(*neighbour_orders):
        yield from_neighbour_orders(dict(zip(nodes, combo)))


def numbering_count(graph: nx.Graph) -> int:
    import math

    count = 1
    for v in graph.nodes:
        count *= math.factorial(graph.degree(v))
    return count


class TestExhaustiveTriangle:
    """K3: 2^3 = 8 numberings."""

    def test_count(self):
        assert sum(1 for _ in all_numberings(nx.complete_graph(3))) == 8

    def test_lemma2_everywhere(self):
        # K3 nodes have even degree, so Lemma 1 makes no promise here;
        # Lemma 2 (each M(i, j) is a matching) must still hold.
        for g in all_numberings(nx.complete_graph(3)):
            for m in all_matchings(g).values():
                covered = set()
                for e in m:
                    assert not (e.endpoints & covered)
                    covered |= e.endpoints

    def test_port_one_feasible_everywhere(self):
        optimum = 1
        for g in all_numberings(nx.complete_graph(3)):
            result = run_anonymous(g, PortOneEDS)
            d = result.edge_set()
            assert is_edge_dominating_set(g, d)
            assert Fraction(len(d), optimum) <= regular_ratio(2)


class TestExhaustiveC4:
    """C4: 2^4 = 16 numberings; 2-regular so PortOne and A(2) apply."""

    def test_port_one(self):
        optimum = minimum_eds_size(
            from_neighbour_orders({0: (1, 3), 1: (0, 2), 2: (1, 3), 3: (2, 0)})
        )
        for g in all_numberings(nx.cycle_graph(4)):
            result = run_anonymous(g, PortOneEDS)
            d = result.edge_set()
            assert is_edge_dominating_set(g, d)
            assert Fraction(len(d), optimum) <= regular_ratio(2)

    def test_bounded_degree(self):
        optimum = 2  # γ'(C4) = ceil(4/3)
        for g in all_numberings(nx.cycle_graph(4)):
            result = run_anonymous(g, BoundedDegreeEDS(2))
            d = result.edge_set()
            assert is_edge_dominating_set(g, d)
            assert Fraction(len(d), optimum) <= bounded_degree_ratio(2)

    def test_lemma2_everywhere(self):
        for g in all_numberings(nx.cycle_graph(4)):
            for m in all_matchings(g).values():
                covered = set()
                for e in m:
                    assert not (e.endpoints & covered)
                    covered |= e.endpoints


class TestExhaustiveK4:
    """K4: 6^4 = 1296 numberings; 3-regular, Theorem 4's domain."""

    def test_regular_odd_all_numberings(self):
        optimum = 2  # γ'(K4)
        seen_sizes = set()
        for g in all_numberings(nx.complete_graph(4)):
            result = run_anonymous(g, RegularOddEDS)
            d = result.edge_set()
            assert is_edge_dominating_set(g, d)
            ratio = Fraction(len(d), optimum)
            assert ratio <= regular_ratio(3)
            seen_sizes.add(len(d))
        # the numbering genuinely matters: different numberings give
        # different solution sizes
        assert len(seen_sizes) >= 2

    def test_lemma1_all_numberings(self):
        for g in all_numberings(nx.complete_graph(4)):
            for v in g.nodes:
                assert distinguishable_neighbour(g, v) is not None


class TestExhaustivePaths:
    """P4: 1·2·2·1 = 4 numberings; bounded degree 2."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_bounded_degree_on_all_path_numberings(self, n):
        graph = nx.path_graph(n)
        optimum = -(-(n - 1) // 3)
        count = 0
        for g in all_numberings(graph):
            count += 1
            result = run_anonymous(g, BoundedDegreeEDS(2))
            d = result.edge_set()
            assert is_edge_dominating_set(g, d)
            assert Fraction(len(d), optimum) <= bounded_degree_ratio(2)
        assert count == numbering_count(graph)
