"""Public-surface tests: __all__ integrity and the testing strategies.

A library deliverable should keep its advertised names importable and
its documented quickstart working; these tests pin both.
"""

from __future__ import annotations

import importlib

import pytest
from hypothesis import given, settings

import repro
from repro.testing import (
    bounded_degree_port_graphs,
    nx_graphs,
    odd_regular_port_graphs,
    port_graphs,
    regular_nx_graphs,
)

SUBPACKAGES = [
    "repro.portgraph",
    "repro.runtime",
    "repro.algorithms",
    "repro.lowerbounds",
    "repro.factorization",
    "repro.matching",
    "repro.eds",
    "repro.generators",
    "repro.analysis",
    "repro.experiments",
    "repro.testing",
    "repro.cli",
]


class TestPublicSurface:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_quickstart_from_docstring(self):
        """The README / package-docstring quickstart must keep working."""
        import networkx as nx

        graph = repro.from_networkx(nx.petersen_graph())
        result = repro.run_anonymous(
            graph, repro.BoundedDegreeEDS(max_degree=3)
        )
        assert repro.is_edge_dominating_set(graph, result.edge_set())

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestStrategies:
    """The public hypothesis strategies must deliver what they promise."""

    @settings(max_examples=20, deadline=None)
    @given(g=port_graphs(max_nodes=6, max_degree=3))
    def test_port_graphs_respect_bounds(self, g):
        assert g.num_nodes <= 6
        assert g.max_degree <= 3
        assert g.is_simple()

    @settings(max_examples=20, deadline=None)
    @given(graph=regular_nx_graphs(degrees=(3,), max_nodes=10))
    def test_regular_strategy_is_regular(self, graph):
        degrees = {d for _, d in graph.degree()}
        assert degrees == {3}

    @settings(max_examples=20, deadline=None)
    @given(g=odd_regular_port_graphs(degrees=(3,), max_nodes=10))
    def test_odd_regular_strategy(self, g):
        assert g.regularity() == 3

    @settings(max_examples=20, deadline=None)
    @given(g=bounded_degree_port_graphs(max_degree=4, max_nodes=8))
    def test_bounded_strategy(self, g):
        assert g.max_degree <= 4

    @settings(max_examples=20, deadline=None)
    @given(graph=nx_graphs(max_nodes=5))
    def test_nx_strategy_simple(self, graph):
        assert not graph.is_multigraph()
        assert graph.number_of_nodes() <= 5
