"""Tests for repro.plugins entry-point discovery.

A fake installed distribution (module + ``.dist-info`` with an
``entry_points.txt``) is materialised on ``sys.path``, which is exactly
what ``importlib.metadata`` scans — no packaging tooling needed.  The
contracts under test:

* a plugin distribution's registrations show up in the catalogue (and
  therefore in work units, sweeps, and the CLI) without any edit to
  repo source;
* load order is deterministic and duplicate entry-point names are
  rejected (first wins, rest skipped loudly);
* a broken plugin is logged and skipped — never crashes discovery, the
  registry, or the CLI;
* spawn-started ProcessBackend workers re-create plugin registrations
  (origin-module re-import plus the lazy rescan in fresh processes).
"""

from __future__ import annotations

import sys

import pytest

from repro import api
from repro.engine import GraphSpec, JobSpec
from repro.plugins import PLUGIN_GROUP, format_plugins, load_plugins
from repro.plugins import discovery
from repro.registry import ALGORITHMS, algorithm_names

#: A well-behaved plugin module: registers one central-model algorithm.
GOOD_PLUGIN = """\
from repro.registry import register_central

register_central(
    "{name}",
    lambda graph: frozenset(graph.edges),
    description="third-party test plugin: selects every edge",
)
"""


@pytest.fixture
def plugin_site(tmp_path, monkeypatch):
    """A factory for fake installed distributions under one site dir.

    Yields ``add(dist, module, source, entries)``; tears down every
    registration, imported module, and the discovery cache afterwards.
    """
    monkeypatch.syspath_prepend(str(tmp_path))
    before = set(algorithm_names())
    modules: list[str] = []

    def add(dist: str, module: str | None, source: str,
            entries: dict[str, str]) -> None:
        if module is not None:
            (tmp_path / f"{module}.py").write_text(source)
            modules.append(module)
        # Wheel-normalised dir name: dashes in the project name become
        # underscores, or importlib.metadata mis-parses (and dedupes).
        info = tmp_path / f"{dist.replace('-', '_')}-0.1.dist-info"
        info.mkdir()
        (info / "METADATA").write_text(
            f"Metadata-Version: 2.1\nName: {dist}\nVersion: 0.1\n"
        )
        lines = "".join(
            f"{name} = {target}\n" for name, target in entries.items()
        )
        (info / "entry_points.txt").write_text(
            f"[{PLUGIN_GROUP}]\n{lines}"
        )

    yield add

    for name in set(algorithm_names()) - before:
        ALGORITHMS.unregister(name)
    for module in modules:
        sys.modules.pop(module, None)
    discovery._records.clear()  # force a rescan on the next lookup


class TestDiscovery:
    def test_plugin_registers_without_repo_edits(self, plugin_site):
        plugin_site(
            "eds-ring", "eds_ring_plugin",
            GOOD_PLUGIN.format(name="plug_ring"), {"ring": "eds_ring_plugin"},
        )
        records = load_plugins(reload=True)
        assert [(r.name, r.loaded) for r in records] == [("ring", True)]
        assert "plug_ring" in algorithm_names()
        record = api.run_one(
            "plug_ring", api.graph("cycle", n=6), optimum="exact"
        )
        assert record.solution_size == 6

    def test_callable_entry_point_is_invoked(self, plugin_site):
        plugin_site(
            "eds-hook", "eds_hook_plugin",
            "from repro.registry import register_central\n"
            "def install():\n"
            "    register_central('plug_hooked',\n"
            "                     lambda graph: frozenset(graph.edges))\n",
            {"hook": "eds_hook_plugin:install"},
        )
        records = load_plugins(reload=True)
        assert records[0].loaded
        assert "plug_hooked" in algorithm_names()

    def test_load_order_is_sorted_by_name(self, plugin_site):
        plugin_site("eds-b", "eds_plug_b",
                    GOOD_PLUGIN.format(name="plug_b"), {"bbb": "eds_plug_b"})
        plugin_site("eds-a", "eds_plug_a",
                    GOOD_PLUGIN.format(name="plug_a"), {"aaa": "eds_plug_a"})
        records = load_plugins(reload=True)
        assert [r.name for r in records] == ["aaa", "bbb"]

    def test_group_caches_are_independent(self, plugin_site):
        plugin_site("eds-grp", "eds_grp_plugin",
                    GOOD_PLUGIN.format(name="plug_grp"),
                    {"grp": "eds_grp_plugin"})
        # Scanning an unrelated group first must not poison the default
        # group's cache (or vice versa).
        assert load_plugins(group="no.such.group", reload=True) == ()
        records = load_plugins(reload=True)
        assert [r.name for r in records] == ["grp"]
        assert load_plugins(group="no.such.group") == ()

    def test_idempotent_without_reload(self, plugin_site):
        plugin_site("eds-once", "eds_once_plugin",
                    GOOD_PLUGIN.format(name="plug_once"),
                    {"once": "eds_once_plugin"})
        first = load_plugins(reload=True)
        # A second call must not re-import (which would raise
        # DuplicateNameError from the registry) — it serves the cache.
        assert load_plugins() is first


class TestIsolation:
    def test_duplicate_entry_point_names_rejected(self, plugin_site):
        plugin_site("eds-one", "eds_dup_one",
                    GOOD_PLUGIN.format(name="plug_dup_one"),
                    {"dup": "eds_dup_one"})
        plugin_site("eds-two", "eds_dup_two",
                    GOOD_PLUGIN.format(name="plug_dup_two"),
                    {"dup": "eds_dup_two"})
        records = load_plugins(reload=True)
        assert len(records) == 2
        winner, loser = records
        assert winner.loaded and winner.value == "eds_dup_one"
        assert not loser.loaded and "duplicate" in loser.error
        assert "plug_dup_one" in algorithm_names()
        assert "plug_dup_two" not in algorithm_names()

    def test_broken_plugin_is_logged_and_skipped(self, plugin_site, caplog):
        plugin_site("eds-broken", "eds_broken_plugin",
                    "raise RuntimeError('kaboom')\n",
                    {"broken": "eds_broken_plugin"})
        plugin_site("eds-fine", "eds_fine_plugin",
                    GOOD_PLUGIN.format(name="plug_fine"),
                    {"fine": "eds_fine_plugin"})
        with caplog.at_level("WARNING", logger="repro.plugins.discovery"):
            records = load_plugins(reload=True)
        broken = next(r for r in records if r.name == "broken")
        assert not broken.loaded and "kaboom" in broken.error
        assert "kaboom" in caplog.text
        # The healthy plugin and the whole catalogue survive.
        assert next(r for r in records if r.name == "fine").loaded
        assert "plug_fine" in algorithm_names()
        assert "port_one" in algorithm_names()

    def test_missing_entry_point_target_is_isolated(self, plugin_site):
        plugin_site("eds-ghost", None, "", {"ghost": "eds_no_such_module"})
        records = load_plugins(reload=True)
        assert len(records) == 1
        assert not records[0].loaded

    def test_colliding_registration_is_isolated(self, plugin_site):
        # A plugin that claims a built-in name fails inside load();
        # the registry rejects it and discovery records the error.
        plugin_site("eds-squat", "eds_squat_plugin",
                    GOOD_PLUGIN.format(name="port_one"),
                    {"squat": "eds_squat_plugin"})
        records = load_plugins(reload=True)
        assert not records[0].loaded
        assert "already registered" in records[0].error
        # The built-in is untouched.
        from repro.registry import get_algorithm
        assert get_algorithm("port_one").origin == "repro.algorithms.port_one"


class TestFormatting:
    def test_format_plugins_empty(self):
        assert "no plugins discovered" in format_plugins(())

    def test_format_plugins_table(self, plugin_site):
        plugin_site("eds-tbl", "eds_tbl_plugin",
                    GOOD_PLUGIN.format(name="plug_tbl"),
                    {"tbl": "eds_tbl_plugin"})
        text = format_plugins(load_plugins(reload=True))
        assert "tbl" in text and "loaded" in text

    def test_cli_plugins_command(self, plugin_site, capsys):
        from repro.cli import main

        plugin_site("eds-cli", "eds_cli_plugin",
                    GOOD_PLUGIN.format(name="plug_cli"),
                    {"cli": "eds_cli_plugin"})
        load_plugins(reload=True)
        assert main(["plugins"]) == 0
        out = capsys.readouterr().out
        assert "eds_cli_plugin" in out and "loaded" in out


class TestEngineIntegration:
    def test_plugin_visible_in_compare_cli(self, plugin_site, capsys):
        """The acceptance criterion: a third-party-style plugin joins
        `repro-eds compare` with zero edits to repo source."""
        from repro.cli import main

        plugin_site("eds-cmp", "eds_cmp_plugin",
                    GOOD_PLUGIN.format(name="plug_compare"),
                    {"cmp": "eds_cmp_plugin"})
        load_plugins(reload=True)
        code = main([
            "compare", "--families", "regular", "--degrees", "3",
            "--sizes", "8", "--seeds", "1", "--no-cache",
            "--backend", "inline", "--quiet",
            "--algorithms", "port_one,central_optimal,plug_compare",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "plug_compare" in out

    def test_worker_reimports_entry_point_plugin(self, plugin_site):
        """A spawn worker payload re-creates the plugin by importing its
        origin module (the dist's module registers at import time)."""
        from repro.engine.backends.process import _plugin_modules, _worker

        plugin_site("eds-wrk", "eds_wrk_plugin",
                    GOOD_PLUGIN.format(name="plug_worker"),
                    {"wrk": "eds_wrk_plugin"})
        load_plugins(reload=True)
        unit = JobSpec("plug_worker", GraphSpec.make("cycle", n=6))
        modules = _plugin_modules([unit])
        assert modules == ("eds_wrk_plugin",)
        payload = (0, unit.to_json_dict(), modules, False, False)

        # Simulate the spawn worker's fresh interpreter: the plugin's
        # registration and module are gone, only the payload remains.
        ALGORITHMS.unregister("plug_worker")
        sys.modules.pop("eds_wrk_plugin")
        index, record, telemetry = _worker(payload)
        assert index == 0
        assert telemetry is None  # collection was off in the payload
        assert record["solution_size"] == 6
        assert "plug_worker" in algorithm_names()

    def test_plugin_units_run_through_process_pool(self, plugin_site):
        plugin_site("eds-pool", "eds_pool_plugin",
                    GOOD_PLUGIN.format(name="plug_pool"),
                    {"pool": "eds_pool_plugin"})
        load_plugins(reload=True)
        units = [
            JobSpec("plug_pool", GraphSpec.make("cycle", n=n))
            for n in (4, 5, 6, 7)
        ]
        report = api.run_sweep(units, workers=2, backend="process")
        assert [r.solution_size for r in report.records] == [4, 5, 6, 7]
