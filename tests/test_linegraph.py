"""Tests for the §1.1 line-graph correspondences (repro.eds.linegraph).

These verify, on concrete graphs, the structural chain the paper cites:
line graphs are claw-free, dominating sets of L(G) are EDSs of G, and
maximal independent sets of L(G) are maximal matchings of G.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings

from repro.eds import is_edge_dominating_set, minimum_edge_dominating_set
from repro.eds.linegraph import (
    is_claw_free,
    is_dominating_set,
    is_independent_set,
    is_maximal_independent_set,
    line_graph_adjacency,
)
from repro.matching import greedy_maximal_matching, is_maximal_matching, is_matching
from repro.portgraph import from_networkx

from tests.conftest import port_graphs


class TestLineGraph:
    def test_path_line_graph_is_path(self):
        g = from_networkx(nx.path_graph(4))  # P4 -> L(P4) = P3
        adjacency = line_graph_adjacency(g)
        assert len(adjacency) == 3
        degrees = sorted(len(nbrs) for nbrs in adjacency.values())
        assert degrees == [1, 1, 2]

    def test_star_line_graph_is_complete(self):
        g = from_networkx(nx.star_graph(4))  # L(K_{1,4}) = K4
        adjacency = line_graph_adjacency(g)
        assert all(len(nbrs) == 3 for nbrs in adjacency.values())

    def test_claw_itself_detected(self):
        # an explicit K_{1,3}: centre adjacent to 3 mutually
        # non-adjacent leaves — must be flagged as containing a claw
        claw = {
            "c": frozenset({"x", "y", "z"}),
            "x": frozenset({"c"}),
            "y": frozenset({"c"}),
            "z": frozenset({"c"}),
        }
        assert not is_claw_free(claw)

    @settings(max_examples=40, deadline=None)
    @given(g=port_graphs(max_nodes=9))
    def test_line_graphs_are_claw_free(self, g):
        """Paper §1.1: 'the line graph L(G) of any graph G is claw-free'."""
        assert is_claw_free(line_graph_adjacency(g))


class TestCorrespondences:
    @settings(max_examples=30, deadline=None)
    @given(g=port_graphs(max_nodes=8))
    def test_eds_iff_dominating_set(self, g):
        """D is an EDS of G iff D is a dominating set of L(G)."""
        if g.num_edges == 0:
            return
        adjacency = line_graph_adjacency(g)
        eds = minimum_edge_dominating_set(g) if g.num_edges <= 14 else (
            frozenset(g.edges)
        )
        assert is_edge_dominating_set(g, eds)
        assert is_dominating_set(adjacency, eds)
        # and a non-EDS is not a dominating set
        if len(eds) >= 1:
            smaller = frozenset(sorted(eds, key=repr)[1:])
            assert is_edge_dominating_set(g, smaller) == is_dominating_set(
                adjacency, smaller
            )

    @settings(max_examples=30, deadline=None)
    @given(g=port_graphs(max_nodes=8))
    def test_matching_iff_independent(self, g):
        """M is a matching of G iff M is independent in L(G)."""
        adjacency = line_graph_adjacency(g)
        m = greedy_maximal_matching(g)
        assert is_matching(m)
        assert is_independent_set(adjacency, m)
        # two adjacent edges are dependent in L(G)
        for e in g.edges:
            for f in adjacency[e]:
                assert not is_independent_set(adjacency, {e, f})
            break

    @settings(max_examples=30, deadline=None)
    @given(g=port_graphs(max_nodes=8))
    def test_maximal_matching_iff_maximal_independent(self, g):
        """M is a maximal matching of G iff M is a maximal independent
        set of L(G) (paper §1.1)."""
        adjacency = line_graph_adjacency(g)
        m = greedy_maximal_matching(g)
        assert is_maximal_matching(g, m) == is_maximal_independent_set(
            adjacency, m
        )
        assert is_maximal_independent_set(adjacency, m)
