"""Tests for the repro.registry plugin catalogue and the repro.api façade.

Covers the contracts the registry redesign makes:

* names register exactly once (duplicates are loud errors),
* unknown names fail with messages listing every available entry,
* randomised algorithms are engine-reachable and deterministic — the
  same work unit replays the same coins regardless of worker count or
  cache state,
* third-party algorithms / graph families / measures plug in end to end.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.algorithms.port_one import PortOneEDS
from repro.engine import (
    GraphSpec,
    JobSpec,
    ResultCache,
    cache_key,
    execute_unit,
    run_units,
    unit_rng_seed,
)
from repro.registry import (
    ALGORITHMS,
    FAMILIES,
    MEASURES,
    DuplicateNameError,
    Measure,
    RegistryError,
    UnknownNameError,
    algorithm_names,
    family_names,
    get_algorithm,
    get_family,
    get_measure,
    measure_names,
    register_algorithm,
    register_anonymous,
    register_central,
    register_graph_family,
    register_measure,
    resolve,
)


def randomized_unit(seed: int = 1, n: int = 16) -> JobSpec:
    return JobSpec(
        algorithm="randomized_matching",
        graph=GraphSpec.make("regular", seed=seed, d=3, n=n),
        optimum="exact",
    )


class TestCatalogue:
    def test_builtin_algorithms_present(self):
        names = algorithm_names()
        assert {"port_one", "regular_odd", "bounded_degree", "ids_greedy",
                "central_greedy", "randomized_matching"} <= set(names)

    def test_builtin_families_present(self):
        assert {"regular", "bounded", "cycle", "lower_bound_even",
                "lower_bound_odd"} <= set(family_names())

    def test_builtin_measures_present(self):
        assert {"quality", "messages", "adversary", "phase_split"} <= set(
            measure_names()
        )

    def test_models_and_rng_declarations(self):
        assert get_algorithm("port_one").model == "anonymous"
        assert get_algorithm("ids_greedy").model == "identified"
        assert get_algorithm("central_greedy").model == "central"
        randomized = get_algorithm("randomized_matching")
        assert randomized.model == "randomized"
        assert randomized.needs_rng
        assert not get_algorithm("port_one").needs_rng

    def test_lower_bound_families_flagged(self):
        assert get_family("lower_bound_odd").lower_bound
        assert not get_family("regular").lower_bound

    def test_measure_flags(self):
        assert get_measure("quality").grid_safe
        assert get_measure("messages").grid_safe
        assert not get_measure("adversary").grid_safe
        assert get_measure("adversary").requires_lower_bound


class TestErrors:
    def test_unknown_algorithm_lists_available(self):
        with pytest.raises(UnknownNameError) as err:
            resolve("no_such_algorithm")
        message = str(err.value)
        assert "no_such_algorithm" in message
        assert "port_one" in message

    def test_unknown_family_lists_available(self):
        with pytest.raises(UnknownNameError) as err:
            get_family("no_such_family")
        assert "regular" in str(err.value)

    def test_unknown_measure_lists_available(self):
        with pytest.raises(UnknownNameError) as err:
            get_measure("no_such_measure")
        assert "quality" in str(err.value)

    def test_unknown_name_error_is_a_key_error(self):
        """Call sites that predate the registry caught KeyError."""
        with pytest.raises(KeyError):
            resolve("no_such_algorithm")
        with pytest.raises(KeyError):
            GraphSpec.make("no_such_family", n=4)

    def test_duplicate_algorithm_rejected(self):
        with pytest.raises(DuplicateNameError):
            register_anonymous("port_one", lambda graph: PortOneEDS)

    def test_duplicate_family_rejected(self):
        with pytest.raises(DuplicateNameError):
            register_graph_family("regular", params=("d", "n"))(
                lambda p, s: None
            )

    def test_duplicate_measure_rejected(self):
        class Clone(Measure):
            name = "quality"

        with pytest.raises(DuplicateNameError):
            register_measure(Clone)

    def test_bad_model_rejected(self):
        with pytest.raises(RegistryError):
            register_algorithm("whatever", model="quantum")

    def test_unknown_algorithm_params_rejected(self):
        with pytest.raises(RegistryError) as err:
            resolve("port_one", {"delta": 3})
        assert "delta" in str(err.value)

    def test_family_param_validation(self):
        with pytest.raises(RegistryError) as err:
            get_family("regular").make({"d": 3}, 0)
        assert "missing" in str(err.value)
        with pytest.raises(RegistryError):
            get_family("regular").make({"d": 3, "n": 8, "zz": 1}, 0)

    def test_unnamed_measure_rejected(self):
        class Nameless(Measure):
            pass

        with pytest.raises(RegistryError):
            register_measure(Nameless)

    def test_param_errors_are_key_errors(self):
        """The pre-registry resolvers raised KeyError for bad params."""
        with pytest.raises(KeyError):
            resolve("port_one", {"bogus": 1})
        with pytest.raises(KeyError):
            get_family("regular").make({"d": 3}, 0)

    def test_pre_load_duplicate_detected_eagerly(self):
        """Registering before the lazy builtins load must still collide
        with a builtin name immediately — and not poison the registry."""
        from repro.registry import Registry

        reg: Registry[int] = Registry(
            "thing", loader=lambda: reg.register("builtin", 1)
        )
        with pytest.raises(DuplicateNameError):
            reg.register("builtin", 2)
        assert reg.get("builtin") == 1  # later lookups still work

    def test_pre_load_replace_overrides_builtin(self):
        from repro.registry import Registry

        reg: Registry[int] = Registry(
            "thing", loader=lambda: reg.register("builtin", 1)
        )
        reg.register("builtin", 2, replace=True)
        assert reg.get("builtin") == 2


class TestRandomizedDeterminism:
    def test_same_unit_same_record(self):
        a = execute_unit(randomized_unit())
        b = execute_unit(randomized_unit())
        assert a == b
        assert a.canonical() == b.canonical()

    def test_rng_seed_is_content_derived(self):
        assert unit_rng_seed(cache_key(randomized_unit())) == unit_rng_seed(
            cache_key(randomized_unit())
        )
        assert unit_rng_seed(cache_key(randomized_unit(seed=1))) != (
            unit_rng_seed(cache_key(randomized_unit(seed=2)))
        )

    def test_different_rng_seeds_explore_different_matchings(self):
        g = GraphSpec.make("cycle", n=16).build()
        outputs = {
            resolve("randomized_matching", rng_seed=s).run(g)[0]
            for s in range(8)
        }
        assert len(outputs) > 1

    def test_randomized_output_is_feasible_and_measured(self):
        record = execute_unit(randomized_unit())
        assert record.solution_size >= 1
        assert record.optimum_exact
        assert record.ratio >= 1

    def test_parallel_equals_serial_for_randomized(self):
        units = [randomized_unit(seed=s) for s in range(6)]
        serial = run_units(units, workers=1)
        parallel = run_units(units, workers=4)
        assert [r.canonical() for r in serial.records] == [
            r.canonical() for r in parallel.records
        ]

    def test_cache_round_trip_is_byte_identical(self, tmp_path):
        units = [randomized_unit(seed=s) for s in range(3)]
        cache = ResultCache(tmp_path)
        first = run_units(units, cache=cache)
        second = run_units(units, cache=cache)
        assert second.cache_hits == len(units)
        assert [r.canonical() for r in first.records] == [
            r.canonical() for r in second.records
        ]

    def test_messages_measure_on_randomized(self):
        record = api.run_one(
            "randomized_matching", api.graph("cycle", n=20, seed=4),
            measure="messages",
        )
        assert record.messages is not None and record.messages > 0
        assert record.extra["max_round_messages"] <= record.messages


class TestLegacyAdapters:
    def test_legacy_shims_are_gone(self):
        """The one-release deprecation shims were removed on schedule."""
        import repro.analysis.runner as runner
        import repro.engine.spec as spec

        assert not hasattr(runner, "resolve_algorithm")
        assert not hasattr(spec, "graph_families")

    def test_standard_algorithms_resolved_from_registry(self):
        from repro.analysis.runner import standard_algorithms

        specs = standard_algorithms()
        assert set(specs) == {"port_one", "regular_odd", "bounded_degree",
                              "ids_greedy", "central_greedy"}
        assert specs["central_greedy"].model == "central"
        assert specs["port_one"].factory is not None


class TestCustomPlugins:
    """The README 'Extending' walkthrough, as executable contract."""

    def test_custom_algorithm_end_to_end(self):
        from repro.registry import AlgorithmEntry, BoundAlgorithm

        def bind() -> BoundAlgorithm:
            return BoundAlgorithm(
                "take_everything", "central",
                lambda graph: (frozenset(graph.edges), 0),
            )

        entry = AlgorithmEntry(
            name="take_everything", model="central", bind=bind
        )
        with ALGORITHMS.temporarily("take_everything", entry):
            record = api.run_one(
                "take_everything", api.graph("cycle", n=6), optimum="exact"
            )
        assert record.solution_size == 6
        assert record.ratio > 1

    def test_register_central_helper(self):
        register_central("test_all_edges", lambda graph: frozenset(graph.edges))
        try:
            record = api.run_one(
                "test_all_edges", api.graph("path", n=5), optimum="exact"
            )
            assert record.solution_size == 4
        finally:
            ALGORITHMS.unregister("test_all_edges")

    def test_custom_family_end_to_end(self):
        from repro.generators.regular import cycle

        @register_graph_family("test_double_cycle", params=("n",))
        def build(params, seed):
            return cycle(2 * params["n"], seed=seed)

        try:
            spec = api.graph("test_double_cycle", n=5, seed=3)
            graph = spec.build()
            assert graph.num_nodes == 10
            record = api.run_one("port_one", spec)
            assert record.graph_family == "test_double_cycle"
        finally:
            FAMILIES.unregister("test_double_cycle")

    def test_custom_measure_end_to_end(self):
        @register_measure
        class SurplusMeasure(Measure):
            name = "test_surplus"

            def measure(self, graph, run):
                return {
                    "optimum": 1,
                    "optimum_exact": False,
                    "surplus": len(run.edge_set) - 1,
                }

        try:
            record = api.run_one(
                "central_greedy", api.graph("cycle", n=9),
                measure="test_surplus",
            )
            assert record.optimum == 1
            # unknown keys land in the record's extras
            assert record.extra["surplus"] == record.solution_size - 1
        finally:
            MEASURES.unregister("test_surplus")

    def test_temporarily_cleans_up_after_error(self):
        from repro.registry import GraphFamily

        with pytest.raises(RuntimeError):
            with FAMILIES.temporarily(
                "test_transient",
                GraphFamily(name="test_transient", build=lambda p, s: None),
            ):
                raise RuntimeError("boom")
        assert "test_transient" not in FAMILIES


class TestWorkerPluginPropagation:
    """spawn-start workers re-create plugins by importing their modules."""

    def test_origin_recorded_for_builtins_and_plugins(self):
        assert get_algorithm("port_one").origin == "repro.algorithms.port_one"
        assert get_algorithm("randomized_matching").origin == (
            "repro.algorithms.randomized"
        )
        register_central("test_origin_probe",
                         lambda graph: frozenset(graph.edges))
        try:
            assert get_algorithm("test_origin_probe").origin == __name__
        finally:
            ALGORITHMS.unregister("test_origin_probe")

    def test_builtin_units_ship_no_plugin_modules(self):
        from repro.engine.backends.process import _plugin_modules

        assert _plugin_modules([randomized_unit()]) == ()

    def test_figure_units_need_no_algorithm_resolution(self):
        from repro.engine.backends.process import _plugin_modules
        from repro.engine.figures import figure_unit

        # 'figure' names no registered algorithm; plugin collection must
        # honour the measure's uses_algorithm=False instead of resolving.
        assert _plugin_modules([figure_unit("4")]) == ()

    def test_worker_reimports_plugin_module(self, tmp_path, monkeypatch):
        import sys

        from repro.engine.backends.process import _plugin_modules, _worker

        plugin = tmp_path / "eds_plugin_mod.py"
        plugin.write_text(
            "from repro.registry import register_central\n"
            "register_central('plug_all_edges',\n"
            "                 lambda graph: frozenset(graph.edges))\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        __import__("eds_plugin_mod")
        try:
            unit = JobSpec("plug_all_edges", GraphSpec.make("cycle", n=6))
            modules = _plugin_modules([unit])
            assert modules == ("eds_plugin_mod",)
            payload = (0, unit.to_json_dict(), modules, False, False)

            # simulate a spawn worker: fresh interpreter = no plugin
            ALGORITHMS.unregister("plug_all_edges")
            sys.modules.pop("eds_plugin_mod")

            index, record, telemetry = _worker(payload)
            assert index == 0
            assert record["solution_size"] == 6
            assert telemetry is None
        finally:
            sys.modules.pop("eds_plugin_mod", None)
            if "plug_all_edges" in ALGORITHMS:
                ALGORITHMS.unregister("plug_all_edges")


class TestApiFacade:
    def test_as_cache_normalisation(self, tmp_path):
        assert api.as_cache(None) is None
        assert api.as_cache(False) is None
        cache = ResultCache(tmp_path)
        assert api.as_cache(cache) is cache
        assert str(api.as_cache(str(tmp_path)).root) == str(tmp_path)
        assert str(api.as_cache(True, cache_dir=tmp_path).root) == str(
            tmp_path
        )

    def test_run_one_matches_execute_unit(self):
        unit = JobSpec(
            algorithm="port_one",
            graph=GraphSpec.make("regular", seed=2, d=3, n=12),
        )
        record = api.run_one(
            "port_one", api.graph("regular", seed=2, d=3, n=12)
        )
        assert record.canonical() == execute_unit(unit).canonical()

    def test_run_sweep_accepts_scenario_name_with_overrides(self):
        report = api.run_sweep(
            "default", degrees=(2,), sizes=(12,), seeds=1,
            algorithms=("port_one",),
        )
        assert len(report.records) == 1
        assert report.records[0].algorithm == "port_one"

    def test_run_sweep_accepts_unit_lists(self, tmp_path):
        units = [randomized_unit(seed=s) for s in range(2)]
        out = tmp_path / "records.jsonl"
        report = api.run_sweep(units, jsonl=out)
        assert len(report.records) == 2
        assert out.read_text().count("\n") == 2

    def test_run_sweep_rejects_overrides_on_unit_lists(self):
        with pytest.raises(TypeError):
            api.run_sweep([randomized_unit()], degrees=(3,))

    def test_grid_measure_field_expands(self):
        from repro.engine import SweepGrid

        grid = SweepGrid(
            name="m", algorithms=("randomized_matching",),
            degrees=(2,), sizes=(12,), seeds=1, measure="messages",
        )
        units = grid.expand()
        assert units and all(u.measure == "messages" for u in units)
        report = api.run_sweep(grid)
        assert all(r.messages is not None for r in report.records)
