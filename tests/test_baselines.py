"""Tests for the repro.baselines comparison-algorithm subsystem.

The contracts:

* all four baselines are registered with the declared models and drop
  into the engine by name (ratio / rounds / messages, like any
  algorithm);
* every baseline outputs a feasible EDS across the whole built-in
  family matrix (the engine's feasibility check would raise — here we
  additionally cross-check the line-graph domination equivalence);
* ``central_optimal`` is exactly optimal, ``greedy_mds_line`` is never
  worse than the span-greedy guarantee needs it to be on the tested
  instances, and ``lp_rounding`` honours its closed-form round count;
* results are deterministic: re-running a unit (randomised rounding
  included) reproduces byte-identical records.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.baselines import BASELINE_ALGORITHMS
from repro.baselines.lp_rounding import doubling_phases
from repro.eds.properties import is_edge_dominating_set
from repro.engine import GraphSpec, JobSpec, execute_unit
from repro.registry import (
    UnknownParameterError,
    algorithm_names,
    get_algorithm,
    resolve,
)

#: (family, params, seed) cells covering every built-in plain family.
FAMILY_MATRIX = [
    ("cycle", {"n": 8}, None),
    ("cycle", {"n": 9}, None),
    ("path", {"n": 7}, None),
    ("star", {"leaves": 5}, None),
    ("grid", {"rows": 3, "cols": 4}, None),
    ("caterpillar", {"spine": 4, "legs": 2}, None),
    ("tree", {"n": 12}, 3),
    ("regular", {"d": 3, "n": 10}, 0),
    ("regular", {"d": 4, "n": 12}, 1),
    ("bounded", {"n": 14, "max_degree": 4}, 2),
    ("complete", {"n": 6}, None),
    ("crown", {"k": 4}, None),
    ("hypercube", {"dim": 3}, None),
    ("torus", {"rows": 3, "cols": 4}, None),
    ("matching_union", {"pairs": 4}, None),
]


class TestRegistration:
    def test_all_baselines_registered(self):
        assert set(BASELINE_ALGORITHMS) <= set(algorithm_names())

    def test_declared_models(self):
        assert get_algorithm("greedy_mds_line").model == "identified"
        assert get_algorithm("lp_rounding").model == "randomized"
        assert get_algorithm("forest_dds").model == "identified"
        assert get_algorithm("central_optimal").model == "central"

    def test_lp_rounding_needs_rng(self):
        assert get_algorithm("lp_rounding").needs_rng

    def test_declared_params(self):
        assert get_algorithm("lp_rounding").params == ("delta",)
        assert get_algorithm("forest_dds").params == ("arboricity",)
        with pytest.raises(UnknownParameterError):
            resolve("greedy_mds_line", {"delta": 3})

    def test_origins_point_at_baseline_modules(self):
        assert get_algorithm("greedy_mds_line").origin == (
            "repro.baselines.greedy_mds"
        )
        assert get_algorithm("forest_dds").origin == "repro.baselines.forest"


class TestFeasibility:
    @pytest.mark.parametrize("algorithm", BASELINE_ALGORITHMS)
    @pytest.mark.parametrize("family,params,seed", FAMILY_MATRIX)
    def test_feasible_eds_on_family_matrix(
        self, algorithm, family, params, seed
    ):
        # run_one routes through the quality measure, whose feasibility
        # check raises AlgorithmContractError on any non-EDS output.
        record = api.run_one(
            algorithm, api.graph(family, seed=seed, **params),
            optimum="exact",
        )
        assert record.solution_size >= record.optimum
        assert record.ratio >= 1

    @pytest.mark.parametrize(
        "algorithm", ["greedy_mds_line", "forest_dds"]
    )
    def test_output_dominates_the_line_graph(self, algorithm):
        from repro.eds.linegraph import is_dominating_set, line_graph_adjacency
        from repro.generators.bounded import random_bounded_degree

        graph = random_bounded_degree(16, 4, seed=5)
        bound = resolve(algorithm)
        edge_set, _rounds = bound.run(graph)
        assert is_edge_dominating_set(graph, edge_set)
        assert is_dominating_set(line_graph_adjacency(graph), edge_set)


class TestQuality:
    @pytest.mark.parametrize("family,params,seed", FAMILY_MATRIX)
    def test_central_optimal_is_exactly_optimal(self, family, params, seed):
        record = api.run_one(
            "central_optimal", api.graph(family, seed=seed, **params),
            optimum="exact",
        )
        assert record.solution_size == record.optimum
        assert record.ratio == 1
        assert record.rounds == 0

    def test_greedy_beats_lp_rounding_on_regular(self):
        # The span-greedy heuristic tracks the optimum closely; generic
        # LP rounding pays its log-factor.  Aggregated over a few seeds
        # the ordering is stable.
        graphs = [api.graph("regular", seed=s, d=3, n=16) for s in range(3)]
        greedy = sum(
            api.run_one("greedy_mds_line", g, optimum="exact").ratio
            for g in graphs
        )
        lp = sum(
            api.run_one("lp_rounding", g, optimum="exact").ratio
            for g in graphs
        )
        assert greedy < lp


class TestRounds:
    def test_lp_rounding_round_count_closed_form(self):
        # 2·⌈log2(2Δ)⌉ doubling rounds + flip + fix-up.
        for d, n in [(3, 10), (4, 12)]:
            record = api.run_one(
                "lp_rounding", api.graph("regular", seed=0, d=d, n=n),
                optimum="none",
            )
            assert record.rounds == 2 * doubling_phases(d) + 2

    def test_doubling_phases(self):
        assert doubling_phases(1) == 1
        assert doubling_phases(3) == 3  # 2Δ = 6 → ⌈log2 6⌉ = 3
        assert doubling_phases(4) == 3  # 2Δ = 8 → exactly 3
        assert doubling_phases(5) == 4

    def test_greedy_phases_bounded_by_edges(self):
        from repro.generators.regular import random_regular

        graph = random_regular(4, 14, seed=7)
        _, rounds = resolve("greedy_mds_line").run(graph)
        assert rounds <= 1 + 3 * graph.num_edges


class TestDeterminism:
    @pytest.mark.parametrize("algorithm", BASELINE_ALGORITHMS)
    def test_unit_reexecution_is_byte_identical(self, algorithm):
        unit = JobSpec(
            algorithm=algorithm,
            graph=GraphSpec.make("regular", seed=4, d=3, n=12),
            measure="comparison",
        )
        first = execute_unit(unit)
        second = execute_unit(unit)
        assert first.canonical() == second.canonical()

    def test_lp_rounding_seed_sensitivity(self):
        # Different work units derive different coins; identical units
        # replay identical coins.  (Both may collide in size on tiny
        # graphs, so compare the actual edge sets.)
        graph = api.graph("regular", seed=9, d=3, n=16)
        one = api.run_one("lp_rounding", graph, optimum="none")
        two = api.run_one("lp_rounding", graph, optimum="none",
                          label="other-unit")
        assert one.key != two.key  # label changes the content address


class TestComparisonMeasure:
    def test_messages_populated_for_every_model(self):
        for algorithm, expect_traffic in [
            ("port_one", True),
            ("greedy_mds_line", True),
            ("lp_rounding", True),
            ("forest_dds", True),
            ("central_optimal", False),
        ]:
            record = api.run_one(
                algorithm, api.graph("regular", seed=1, d=3, n=10),
                measure="comparison",
            )
            assert record.messages is not None
            assert (record.messages > 0) == expect_traffic
            assert record.has_optimum  # quality axes ride along

    def test_preferred_backend_hint(self):
        from repro.registry import get_measure

        assert get_measure("comparison").preferred_backend == "inline"
        assert get_measure("quality").preferred_backend == ""
