"""Tests for the telemetry subsystem (``repro.obs``).

The contracts under test:

* spans are a no-op when nothing records, nest correctly when something
  does, and self times never double-count nested phases;
* a telemetry session aggregates identically whether units ran inline
  or crossed a process boundary (``UnitTelemetry`` JSON round-trip);
* telemetry never perturbs results — records and their cached bytes are
  byte-identical with telemetry on or off, on every backend;
* phase sums reconcile with unit wall time;
* the JSONL trace export is valid line-delimited JSON with the
  documented line types;
* the execution report gains ``wall_time_s`` and the progress printer
  only shows a units/s rate when units were actually computed.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import api
from repro.engine import ResultCache, SweepGrid, run_units
from repro.engine.executor import (
    ProgressPrinter,
    execute_unit,
    execute_unit_instrumented,
)
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    UnitTelemetry,
    collection_enabled,
    current_recorder,
    percentile,
    recording,
    set_collection,
    span,
    span_self_times,
    summarize,
    telemetry,
    write_trace,
)

GRID = SweepGrid(
    name="telemetry-test",
    algorithms=("port_one", "bounded_degree"),
    family="regular",
    degrees=(2, 3),
    sizes=(12,),
    seeds=1,
)


def units():
    return GRID.expand()


# ---------------------------------------------------------------------------
# Span mechanics
# ---------------------------------------------------------------------------


class TestSpans:
    def test_span_is_noop_without_recorder(self):
        assert current_recorder() is None
        with span("anything", attr=1) as s:
            assert s is None

    def test_recording_installs_and_removes_recorder(self):
        with recording() as rec:
            assert current_recorder() is rec
        assert current_recorder() is None

    def test_nested_spans_record_parents(self):
        with recording() as rec:
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner2"):
                    pass
        names = [s.name for s in rec.spans]
        assert names == ["outer", "inner", "inner2"]
        assert rec.spans[0].parent is None
        assert rec.spans[1].parent == 0
        assert rec.spans[2].parent == 0

    def test_self_times_exclude_children(self):
        # Scripted clock: outer spans 0..10s, the inner child 1..3s.
        readings = iter([0.0, 0.0, 1.0, 3.0, 10.0])
        rec = SpanRecorder(clock=lambda: next(readings))
        outer = rec.open("outer")
        inner = rec.open("inner")
        rec.close(inner)
        rec.close(outer)
        selfs = span_self_times(rec.spans)
        assert selfs[outer] == pytest.approx(8.0)
        assert selfs[inner] == pytest.approx(2.0)

    def test_annotate_attaches_to_innermost_open_span(self):
        with recording() as rec:
            with span("simulate"):
                rec.annotate(engine="compiled", rounds=7)
        assert rec.spans[0].attrs["engine"] == "compiled"
        assert rec.spans[0].attrs["rounds"] == 7

    def test_counters_accumulate(self):
        with recording() as rec:
            rec.count("x")
            rec.count("x", 4)
        assert rec.counters == {"x": 5}

    def test_unit_telemetry_json_round_trip(self):
        with recording() as rec:
            with span("simulate", engine="compiled"):
                rec.count("runtime.rounds", 12)
        unit = UnitTelemetry.from_recorder(
            rec, key="k" * 64, algorithm="port_one", label="test",
            measure="quality", wall_s=0.5,
        )
        clone = UnitTelemetry.from_json_dict(
            json.loads(json.dumps(unit.to_json_dict()))
        )
        assert clone.key == unit.key
        assert clone.counters == unit.counters
        assert [s.name for s in clone.spans] == ["simulate"]
        assert clone.spans[0].attrs == {"engine": "compiled"}
        assert clone.phase_self_times() == pytest.approx(
            unit.phase_self_times()
        )


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 0.5) == 5.0
        assert percentile(values, 0.95) == 10.0
        assert percentile([42.0], 0.5) == 42.0

    def test_summarize(self):
        s = summarize([3.0, 1.0, 2.0])
        assert s["count"] == 3
        assert s["total"] == pytest.approx(6.0)
        assert s["max"] == 3.0

    def test_registry_merge_and_histograms(self):
        m = MetricsRegistry()
        m.inc("a", 2)
        m.merge_counters({"a": 3, "b": 1})
        m.observe("phase.simulate", 0.25)
        assert m.counter("a") == 5
        assert m.counter("b") == 1
        assert m.histogram_names(prefix="phase.") == ["phase.simulate"]


# ---------------------------------------------------------------------------
# Instrumented execution
# ---------------------------------------------------------------------------


class TestInstrumentedExecution:
    def test_disabled_path_returns_no_telemetry(self):
        assert not collection_enabled()
        record, unit_telemetry = execute_unit_instrumented(units()[0])
        assert unit_telemetry is None
        assert record == execute_unit(units()[0])

    def test_enabled_path_matches_plain_record(self):
        spec = units()[0]
        set_collection(True)
        try:
            record, unit_telemetry = execute_unit_instrumented(spec)
        finally:
            set_collection(False)
        assert record.canonical() == execute_unit(spec).canonical()
        assert unit_telemetry is not None
        phases = unit_telemetry.phase_self_times()
        for expected in ("resolve", "graph_build", "simulate"):
            assert expected in phases
        # Phase self times reconcile with (stay within) unit wall time.
        assert sum(phases.values()) <= unit_telemetry.wall_s
        assert unit_telemetry.counters["runtime.runs"] >= 1
        assert unit_telemetry.counters["runtime.rounds"] >= 1

    def test_session_aggregates_and_reconciles(self):
        with telemetry() as session:
            report = run_units(units(), backend="inline")
        assert report.telemetry is session
        assert len(session.units) == len(units())
        assert session.metrics.counter("units.computed") == len(units())
        assert session.metrics.counter("runtime.runs") == len(units())
        assert session.metrics.counter("runtime.messages.delivered") > 0
        # Reconciliation: phase self-time total never exceeds wall total.
        assert session.phase_total_s() <= session.unit_wall_total_s()
        assert session.unaccounted_s() >= 0.0
        # Collection switch was restored afterwards.
        assert not collection_enabled()

    @pytest.mark.parametrize("backend", ["inline", "thread", "process"])
    def test_aggregation_identical_across_backends(self, backend):
        """The process round-trip (telemetry serialised into the worker
        payload and back) must lose nothing: deterministic counters
        aggregate exactly as they do inline."""
        with telemetry() as inline_session:
            run_units(units(), backend="inline")
        with telemetry() as session:
            run_units(units(), backend=backend, workers=2)
        for name in ("runtime.runs", "runtime.rounds",
                     "runtime.messages.delivered",
                     "runtime.messages.dropped", "units.computed"):
            assert session.metrics.counter(name) == (
                inline_session.metrics.counter(name)
            ), name
        assert sorted(u.key for u in session.units) == sorted(
            u.key for u in inline_session.units
        )

    @pytest.mark.parametrize("backend", ["inline", "process"])
    def test_records_byte_identical_with_and_without_telemetry(
        self, backend
    ):
        """Telemetry travels next to records, never inside them."""
        plain = [r.canonical() for r in run_units(units()).records]
        with telemetry():
            observed = run_units(
                units(), backend=backend, workers=2
            ).records
        assert [r.canonical() for r in observed] == plain

    def test_cached_bytes_unchanged_by_telemetry(self, tmp_path):
        """The cache files a telemetry run writes are byte-identical to
        the ones a plain run writes — traces never leak into the cache."""
        cold = ResultCache(tmp_path / "cold")
        run_units(units(), cache=cold)
        warm = ResultCache(tmp_path / "warm")
        with telemetry():
            run_units(units(), cache=warm)
        for key in cold.keys():
            assert (
                warm.path_for(key).read_bytes()
                == cold.path_for(key).read_bytes()
            )

    def test_cache_hit_and_miss_metrics(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with telemetry() as session:
            run_units(units(), cache=cache)
        n = len(units())
        assert session.metrics.counter("cache.miss") == n
        assert session.metrics.counter("cache.write") == n
        with telemetry() as session:
            run_units(units(), cache=cache)
        assert session.metrics.counter("cache.hit") == n
        assert session.metrics.counter("units.computed") == 0

    def test_wall_time_recorded(self):
        report = run_units(units()[:1])
        assert report.wall_time_s > 0.0
        assert report.telemetry is None


# ---------------------------------------------------------------------------
# Trace export
# ---------------------------------------------------------------------------


class TestTraceExport:
    def test_trace_is_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with telemetry() as session:
            run_units(units(), backend="inline")
        lines = write_trace(path, session, meta={"command": "test"})
        parsed = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert len(parsed) == lines == len(units()) + 2
        assert parsed[0]["type"] == "meta"
        assert parsed[0]["command"] == "test"
        assert all(p["type"] == "unit" for p in parsed[1:-1])
        assert parsed[-1]["type"] == "summary"
        assert parsed[-1]["metrics"]["counters"]["units.computed"] == (
            len(units())
        )
        # Every unit line round-trips into UnitTelemetry.
        for p in parsed[1:-1]:
            unit = UnitTelemetry.from_json_dict(p)
            assert unit.spans

    def test_trace_of_empty_session(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with telemetry() as session:
            pass
        assert write_trace(path, session) == 2  # meta + summary


# ---------------------------------------------------------------------------
# Progress reporting
# ---------------------------------------------------------------------------


class TestProgressPrinter:
    def _lines(self, printer, stream):
        return [line for line in stream.getvalue().splitlines() if line]

    def test_shows_rate_when_computing(self):
        stream = io.StringIO()
        printer = ProgressPrinter(4, stream=stream, min_interval=0.0)
        printer(2, 0)
        assert "units/s" in stream.getvalue()

    def test_all_cached_run_shows_no_rate(self):
        """computed == 0: a throughput number would be meaningless."""
        stream = io.StringIO()
        printer = ProgressPrinter(4, stream=stream, min_interval=0.0)
        printer(4, 4)
        out = stream.getvalue()
        assert "4/4 units (4 cached)" in out
        assert "units/s" not in out
        assert "eta 0s" in out

    def test_zero_done_shows_no_rate(self):
        stream = io.StringIO()
        printer = ProgressPrinter(4, stream=stream, min_interval=0.0)
        printer(0, 0)
        out = stream.getvalue()
        assert "units/s" not in out
        assert "eta ?" in out


# ---------------------------------------------------------------------------
# Public API surface
# ---------------------------------------------------------------------------


class TestApiSurface:
    def test_run_sweep_exposes_telemetry_session(self):
        with telemetry() as session:
            report = api.run_sweep(units(), backend="inline")
        assert report.telemetry is session
        assert report.wall_time_s > 0.0


# ---------------------------------------------------------------------------
# Edge cases: empty sessions, all-cached runs, ordering determinism
# ---------------------------------------------------------------------------


class TestEdgeCases:
    def _unit(self, key: str, wall: float) -> UnitTelemetry:
        return UnitTelemetry(
            key=key, algorithm="a", label="l", measure="quality",
            wall_s=wall, worker="1:MainThread",
        )

    def test_top_units_breaks_wall_ties_by_key(self):
        """Pool backends ingest units in completion order; equal wall
        times must still render in one canonical order."""
        from repro.obs.session import TelemetrySession

        for order in (("b", "a", "c"), ("c", "b", "a")):
            session = TelemetrySession()
            for key in order:
                session.add_unit(self._unit(key, 0.5))
            assert [u.key for u in session.top_units(3)] == ["a", "b", "c"]

    def test_top_units_sorts_by_wall_before_key(self):
        from repro.obs.session import TelemetrySession

        session = TelemetrySession()
        session.add_unit(self._unit("z", 2.0))
        session.add_unit(self._unit("a", 1.0))
        assert [u.key for u in session.top_units(2)] == ["z", "a"]

    def test_empty_session_renders_report(self):
        from repro.obs import render_report, report_json_dict

        with telemetry() as session:
            pass
        text = render_report(session)
        assert "0 unit(s)" in text or "units" in text
        data = report_json_dict(session)
        assert data["units_computed"] == 0
        assert data["phases"] == []
        assert data["top_units"] == []
        assert data["memory_captured"] is False

    def test_empty_metrics_merge(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.merge_counters(right.counters)
        assert left.counters == {}
        assert left.summary("anything") == {
            "count": 0, "total": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0,
        }

    def test_all_cached_sweep_has_zero_units_but_valid_outputs(
        self, tmp_path
    ):
        from repro.obs import render_report, write_perfetto

        cache = ResultCache(tmp_path / "cache")
        api.run_sweep(units(), cache=cache)  # warm
        with telemetry() as session:
            api.run_sweep(units(), cache=cache)
        assert session.units == []
        assert session.metrics.counters.get("cache.hit") == len(units())
        assert session.top_units(5) == []
        assert session.unaccounted_s() == 0.0
        # Both exporters must cope with a unit-less session.
        trace = tmp_path / "cached.jsonl"
        assert write_trace(trace, session) == 2
        assert write_perfetto(tmp_path / "cached.pft.json", session) == 0
        assert "cache" in render_report(session)

    def test_profile_format_json_cli(self, capsys):
        from repro.cli import main

        code = main([
            "profile", "--scenario", "default", "--limit", "2",
            "--backend", "inline", "--no-cache", "--format", "json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["units_computed"] == 2
        assert data["memory_captured"] is False
        assert {p["name"] for p in data["phases"]} >= {"simulate"}
        assert len(data["top_units"]) == 2

    def test_profile_json_with_memory_carries_bytes(self, capsys):
        from repro.cli import main

        code = main([
            "profile", "--scenario", "default", "--limit", "1",
            "--backend", "inline", "--no-cache", "--format", "json",
            "--mem",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["memory_captured"] is True
        simulate = next(
            p for p in data["phases"] if p["name"] == "simulate"
        )
        assert simulate["mem_peak_max_b"] > 0
        assert data["top_units"][0]["mem_peak_b"] > 0

    def test_mem_without_trace_warns_on_sweep(self, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--degrees", "2", "--sizes", "12", "--seeds", "1",
            "--no-cache", "--backend", "inline", "--quiet",
            "--algorithms", "port_one", "--mem",
        ])
        assert code == 0
        assert "--mem has no effect" in capsys.readouterr().err
