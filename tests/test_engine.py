"""Tests for the parallel experiment engine.

Covers the four contracts the engine makes:

* content-addressed keys are stable and collision-sensitive,
* the on-disk cache hits, misses, survives corruption, and writes through,
* parallel execution produces byte-identical records to serial execution,
* per-unit seeding is deterministic regardless of worker count.
"""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.engine import (
    GraphSpec,
    JobSpec,
    ResultCache,
    ResultRecord,
    ResultStore,
    SweepGrid,
    cache_key,
    derive_seed,
    execute_unit,
    get_scenario,
    run_units,
    scenario_names,
)
from repro.registry import family_names


def unit(seed: int = 1, *, label: str = "", algorithm: str = "port_one"):
    return JobSpec(
        algorithm=algorithm,
        graph=GraphSpec.make("regular", seed=seed, d=3, n=12),
        label=label,
    )


SMALL_GRID = SweepGrid(
    name="test",
    algorithms=("port_one", "regular_odd", "bounded_degree"),
    family="regular",
    degrees=(2, 3),
    sizes=(12,),
    seeds=2,
)


class TestSpecs:
    def test_graph_spec_build_and_label(self):
        spec = GraphSpec.make("regular", seed=3, d=3, n=12)
        graph = spec.build()
        assert graph.num_nodes == 12
        assert "regular" in spec.label() and "seed=3" in spec.label()

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            GraphSpec.make("no-such-family", n=4)
        assert "regular" in family_names()

    def test_adversary_requires_lower_bound_family(self):
        with pytest.raises(ValueError):
            JobSpec(
                algorithm="port_one",
                graph=GraphSpec.make("regular", d=2, n=8),
                measure="adversary",
            )

    def test_invalid_measure_and_optimum_rejected(self):
        with pytest.raises(ValueError):
            JobSpec("port_one", GraphSpec.make("cycle", n=5), measure="huh")
        with pytest.raises(ValueError):
            JobSpec("port_one", GraphSpec.make("cycle", n=5), optimum="huh")

    def test_json_round_trip(self):
        spec = unit(seed=9, label="hello")
        assert JobSpec.from_json_dict(spec.to_json_dict()) == spec


class TestCacheKeys:
    def test_key_is_stable(self):
        assert cache_key(unit()) == cache_key(unit())

    def test_key_survives_json_round_trip(self):
        spec = unit(seed=5)
        clone = JobSpec.from_json_dict(json.loads(json.dumps(
            spec.to_json_dict()
        )))
        assert cache_key(clone) == cache_key(spec)

    def test_key_ignores_param_declaration_order(self):
        a = JobSpec("port_one", GraphSpec.make("regular", seed=0, d=3, n=12))
        b = JobSpec("port_one", GraphSpec.make("regular", seed=0, n=12, d=3))
        assert cache_key(a) == cache_key(b)

    @pytest.mark.parametrize(
        "other",
        [
            unit(seed=2),
            unit(algorithm="bounded_degree"),
            unit(label="renamed"),
            JobSpec("port_one", GraphSpec.make("regular", seed=1, d=3, n=12),
                    optimum="none"),
        ],
    )
    def test_different_units_get_different_keys(self, other):
        assert cache_key(other) != cache_key(unit())


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(unit())
        assert cache.get(key) is None
        record = execute_unit(unit())
        cache.put(key, record.to_json_dict())
        assert cache.get(key) == record.to_json_dict()
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(unit())
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache_key(unit()), {"x": 1})
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_run_units_writes_through(self, tmp_path):
        units = SMALL_GRID.expand()
        cache = ResultCache(tmp_path)
        first = run_units(units, cache=cache)
        assert first.cache_hits == 0 and first.computed == len(units)
        second = run_units(units, cache=cache)
        assert second.computed == 0
        assert second.hit_rate == 1.0
        assert [r.canonical() for r in first.records] == [
            r.canonical() for r in second.records
        ]


class TestParallelExecution:
    def test_parallel_equals_serial(self):
        units = SMALL_GRID.expand()
        serial = run_units(units, workers=1)
        parallel = run_units(units, workers=4)
        assert [r.canonical() for r in serial.records] == [
            r.canonical() for r in parallel.records
        ]
        # dataclass-level equality too, not just canonical JSON
        assert serial.records == parallel.records

    def test_partial_cache_plus_workers(self, tmp_path):
        units = SMALL_GRID.expand()
        cache = ResultCache(tmp_path)
        run_units(units[: len(units) // 2], cache=cache)
        report = run_units(units, workers=2, cache=cache)
        assert report.cache_hits == len(units) // 2
        assert [r.canonical() for r in report.records] == [
            r.canonical() for r in run_units(units).records
        ]


class TestSeeding:
    def test_derive_seed_is_stable_and_content_addressed(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)
        assert derive_seed("a", 1) != derive_seed("a", 2)
        assert derive_seed("a", 1) != derive_seed("b", 1)

    def test_grid_expansion_is_deterministic(self):
        first = SMALL_GRID.expand()
        second = SMALL_GRID.expand()
        assert first == second
        # per-cell seeds differ across replicates but are deterministic
        seeds = {u.graph.seed for u in first}
        assert len(seeds) > 1

    def test_same_cell_same_seed_across_grids_with_same_name(self):
        other = SMALL_GRID.override(sizes=(12, 16))
        by_coords = {
            (u.algorithm, u.graph): u for u in other.expand()
        }
        for u in SMALL_GRID.expand():
            assert (u.algorithm, u.graph) in by_coords

    def test_regular_odd_skipped_on_even_degrees(self):
        assert not any(
            u.algorithm == "regular_odd" and dict(u.graph.params)["d"] % 2 == 0
            for u in SMALL_GRID.expand()
        )

    def test_infeasible_cells_skipped(self):
        grid = SMALL_GRID.override(degrees=(3,), sizes=(3, 13, 12))
        cells = list(grid.cells())
        assert all(n == 12 for _, n, _ in cells)


class TestMeasures:
    def test_quality_optimum_none_skips_optimum(self):
        record = execute_unit(
            JobSpec("port_one", GraphSpec.make("regular", seed=0, d=3, n=12),
                    optimum="none")
        )
        assert record.optimum == 0 and not record.has_optimum
        assert record.rounds == 1
        assert record.solution_size > 0

    def test_quality_exact_matches_known_tight_case(self):
        record = execute_unit(
            JobSpec(
                algorithm="bounded_degree",
                algorithm_params=(("delta", 1),),
                graph=GraphSpec.make("matching_union", pairs=4),
                optimum="exact",
            )
        )
        assert record.ratio == Fraction(1)
        assert record.optimum_exact

    def test_adversary_record_carries_tightness(self):
        record = execute_unit(
            JobSpec(
                algorithm="regular_odd",
                graph=GraphSpec.make("lower_bound_odd", d=3),
                measure="adversary",
            )
        )
        assert record.extra["tight"] is True
        assert record.ratio == Fraction(
            record.extra["forced_ratio_num"],
            record.extra["forced_ratio_den"],
        )

    def test_message_counting(self):
        record = execute_unit(
            JobSpec("regular_odd",
                    GraphSpec.make("regular", seed=0, d=3, n=12),
                    count_messages=True)
        )
        assert record.messages is not None and record.messages > 0

    def test_phase_split_sizes_ordered(self):
        record = execute_unit(
            JobSpec("regular_odd",
                    GraphSpec.make("regular", seed=7, d=3, n=14),
                    measure="phase_split")
        )
        assert record.solution_size >= record.extra["final_size"]


class TestResultStore:
    def test_jsonl_round_trip(self, tmp_path):
        store = run_units(SMALL_GRID.expand()[:4]).store
        path = tmp_path / "records.jsonl"
        store.to_jsonl(path)
        loaded = ResultStore.from_jsonl(path)
        assert loaded.records == store.records

    def test_summary_and_experiment_rows(self):
        store = run_units(SMALL_GRID.expand()[:4]).store
        text = store.format_summary()
        assert "algorithm" in text and "units" in text
        rows = store.experiment_rows()
        assert len(rows) == 4
        assert all(row.ratio >= 1 for row in rows)


class TestScenarios:
    def test_named_scenarios_expand(self):
        assert set(scenario_names()) >= {"default", "large-regular"}
        units = get_scenario("default").expand()
        assert units
        assert all(isinstance(u, JobSpec) for u in units)

    def test_large_regular_covers_the_headline_grid(self):
        grid = get_scenario("large-regular")
        assert set(grid.degrees) == set(range(2, 11))
        assert max(grid.sizes) == 2048
        assert grid.seeds >= 10
        # no exact solving at that scale
        assert grid.optimum == "lower_bound"

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            get_scenario("nope")


class TestRecordAdapters:
    def test_record_json_round_trip(self):
        record = execute_unit(unit())
        clone = ResultRecord.from_json_dict(
            json.loads(json.dumps(record.to_json_dict()))
        )
        assert clone == record
        assert clone.canonical() == record.canonical()
