"""Tests for per-phase memory telemetry (``repro.obs.memory``).

The contracts:

* memory capture is strictly opt-in — with it off, spans and unit
  telemetry carry no memory fields and serialize byte-identically to
  the pre-memory shape;
* with it on, every closed span gets a traced peak / net-alloc / RSS
  triple, a child's allocation spike is charged to every open ancestor,
  and the unit-level peak dominates every span peak;
* only one meter can be live per process (tracemalloc peaks are global
  state): a concurrent recorder silently records timing only;
* memory aggregates into the session as ``phase_mem.*`` / ``unit.*`` /
  ``engine_mem.*`` histograms and renders as table columns — and never
  changes cache keys or record bytes (`--mem` on vs off).
"""

from __future__ import annotations

import json

from repro import api
from repro.engine import ResultCache, SweepGrid
from repro.engine.cache import cache_key
from repro.engine.executor import execute_unit
from repro.obs import (
    MemoryMeter,
    Span,
    UnitTelemetry,
    memory_collection_enabled,
    recording,
    render_report,
    rss_peak_bytes,
    set_memory_collection,
    span,
    telemetry,
)

GRID = SweepGrid(
    name="mem-test",
    algorithms=("port_one", "bounded_degree"),
    family="regular",
    degrees=(2, 3),
    sizes=(12,),
    seeds=1,
)


def units():
    return GRID.expand()


class TestMemoryMeter:
    def test_flag_round_trip(self):
        assert not memory_collection_enabled()
        set_memory_collection(True)
        try:
            assert memory_collection_enabled()
        finally:
            set_memory_collection(False)
        assert not memory_collection_enabled()

    def test_rss_peak_is_positive_bytes(self):
        rss = rss_peak_bytes()
        assert rss is not None
        # A running interpreter is at least a few MiB resident.
        assert rss > 1 << 20

    def test_spans_carry_no_memory_by_default(self):
        with recording() as rec:
            with span("phase"):
                pass
        assert rec.mem_peak_b is None
        assert rec.spans[0].mem_peak_b is None
        data = rec.spans[0].to_json_dict()
        assert "mem_peak_b" not in data and "mem_alloc_b" not in data

    def test_spans_capture_memory_when_enabled(self):
        with recording(capture_memory=True) as rec:
            with span("alloc"):
                blob = bytearray(4_000_000)
            del blob
        assert rec.mem_peak_b is not None and rec.mem_peak_b >= 4_000_000
        assert rec.rss_peak_b is not None
        alloc_span = rec.spans[0]
        assert alloc_span.mem_peak_b >= 4_000_000
        assert alloc_span.mem_alloc_b >= 4_000_000
        assert alloc_span.mem_rss_b == rec.rss_peak_b

    def test_child_spike_charged_to_open_ancestors(self):
        with recording(capture_memory=True) as rec:
            with span("parent"):
                with span("child"):
                    blob = bytearray(4_000_000)
                del blob
        parent, child = rec.spans[0], rec.spans[1]
        assert child.mem_peak_b >= 4_000_000
        # The 4 MB were live while the parent was open, so its peak must
        # reflect them even though the child allocated (and freed) them.
        assert parent.mem_peak_b >= 4_000_000
        # ...but the parent's *net* allocation is small: the blob died
        # inside its window.
        assert parent.mem_alloc_b < 1_000_000
        # The unit-level peak dominates every span peak.
        assert rec.mem_peak_b >= parent.mem_peak_b

    def test_meter_is_exclusive_per_process(self):
        meter = MemoryMeter.acquire()
        assert meter is not None
        try:
            assert MemoryMeter.acquire() is None
        finally:
            meter.finish()
        second = MemoryMeter.acquire()
        assert second is not None
        second.finish()

    def test_concurrent_recording_skips_memory_not_timing(self):
        with recording(capture_memory=True) as outer:
            with span("outer_phase"):
                pass
            # A second recorder (thread backend scenario) can't get the
            # meter; it must still record spans.
            with recording(capture_memory=True) as inner:
                with span("inner_phase"):
                    pass
            assert inner.mem_peak_b is None
            assert inner.spans[0].mem_peak_b is None
            assert inner.spans[0].duration_s >= 0.0
        assert outer.mem_peak_b is not None


class TestSerialization:
    def test_span_json_round_trip_with_memory(self):
        original = Span(
            name="simulate", start_s=0.1, duration_s=0.2,
            mem_alloc_b=10, mem_peak_b=300, mem_rss_b=1 << 20,
        )
        restored = Span.from_json_dict(
            json.loads(json.dumps(original.to_json_dict()))
        )
        assert restored == original

    def test_unit_telemetry_round_trip_with_memory(self):
        with recording(capture_memory=True) as rec:
            with span("alloc"):
                blob = bytearray(1_000_000)
            del blob
        unit = UnitTelemetry.from_recorder(
            rec, key="k", algorithm="a", label="l", measure="m", wall_s=0.5,
        )
        assert unit.mem_peak_b == rec.mem_peak_b
        restored = UnitTelemetry.from_json_dict(
            json.loads(json.dumps(unit.to_json_dict()))
        )
        # Timestamps are rounded on write, so compare the memory payload
        # and check the round trip is a fixed point.
        assert restored.mem_peak_b == unit.mem_peak_b
        assert restored.rss_peak_b == unit.rss_peak_b
        assert restored.phase_mem_peaks() == unit.phase_mem_peaks()
        again = UnitTelemetry.from_json_dict(restored.to_json_dict())
        assert again == restored

    def test_json_shape_unchanged_without_memory(self):
        unit = UnitTelemetry(
            key="k", algorithm="a", label="l", measure="m",
            wall_s=0.5, worker="1:MainThread",
        )
        data = unit.to_json_dict()
        assert "mem_peak_b" not in data and "rss_peak_b" not in data


class TestSessionAggregation:
    def test_session_collects_memory_histograms(self):
        with telemetry(capture_memory=True) as session:
            api.run_sweep(units(), cache=None, backend="inline")
        assert session.has_memory()
        unit_mem = session.metrics.summary("unit.mem_peak_b")
        assert unit_mem["count"] == len(units())
        assert unit_mem["max"] > 0
        phase_mems = session.metrics.histogram_names(prefix="phase_mem.")
        assert "phase_mem.simulate" in phase_mems
        assert "phase_mem.graph_build:generate" in phase_mems
        # Per-engine attribution via the simulate span's engine attr.
        engines = session.metrics.histogram_names(prefix="engine_mem.")
        assert engines, "expected at least one engine_mem histogram"

    def test_session_without_mem_flag_collects_none(self):
        with telemetry() as session:
            api.run_sweep(units()[:1], cache=None, backend="inline")
        assert not session.has_memory()
        assert session.metrics.histogram_names(prefix="phase_mem.") == []

    def test_report_gains_memory_columns_only_with_mem(self):
        with telemetry(capture_memory=True) as with_mem:
            api.run_sweep(units()[:2], cache=None, backend="inline")
        report = render_report(with_mem)
        assert "mem p50" in report
        assert "memory: traced peak per unit" in report
        assert "memory by engine:" in report

        with telemetry() as without_mem:
            api.run_sweep(units()[:2], cache=None, backend="inline")
        report = render_report(without_mem)
        assert "mem p50" not in report
        assert "memory:" not in report


class TestResultPurity:
    def test_records_byte_identical_with_mem_on_and_off(self):
        unit = units()[0]
        plain = execute_unit(unit)
        with telemetry(capture_memory=True):
            report = api.run_sweep([unit], cache=None, backend="inline")
        instrumented = report.records[0]
        assert (
            json.dumps(plain.to_json_dict(), sort_keys=True)
            == json.dumps(instrumented.to_json_dict(), sort_keys=True)
        )

    def test_cache_bytes_and_keys_unchanged_by_mem(self, tmp_path):
        unit = units()[0]
        key_before = cache_key(unit)

        cache_off = ResultCache(tmp_path / "off")
        api.run_sweep([unit], cache=cache_off)

        cache_on = ResultCache(tmp_path / "on")
        with telemetry(capture_memory=True):
            api.run_sweep([unit], cache=cache_on)

        assert cache_key(unit) == key_before
        path_off = cache_off.path_for(key_before)
        path_on = cache_on.path_for(key_before)
        assert path_off.read_bytes() == path_on.read_bytes()

    def test_memory_flags_always_reset_after_run(self):
        with telemetry(capture_memory=True):
            api.run_sweep(units()[:1], cache=None, backend="inline")
        assert not memory_collection_enabled()


class TestGraphBuildSubPhases:
    def test_generate_and_compile_are_separate_phases(self):
        with telemetry() as session:
            api.run_sweep(units()[:2], cache=None, backend="inline")
        phases = session.phase_names()
        assert "graph_build" in phases
        assert "graph_build:generate" in phases
        assert "graph_build:compile" in phases
        # The parent keeps only coordination self-time: the generator's
        # time lives in the child, so the parent's total is smaller.
        parent = session.metrics.summary("phase.graph_build")["total"]
        generate = session.metrics.summary(
            "phase.graph_build:generate"
        )["total"]
        assert parent < generate

    def test_vector_view_phase_appears_on_vector_engine(self):
        from repro.runtime import use_engine, vector_available

        if not vector_available():
            import pytest

            pytest.skip("numpy not installed")
        with telemetry() as session, use_engine("vector"):
            api.run_sweep(units()[:1], cache=None, backend="inline")
        assert "graph_build:vector_view" in session.phase_names()
