"""Tests for the figure reproductions as engine work units (E5-E11).

The figure builders themselves are covered by test_experiments.py; this
file covers their promotion to engine citizens — the ``figure`` graph
family, the ``figure:N`` measure family, unit expansion, caching, and
byte-reproducibility.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    FIGURE_IDS,
    GraphSpec,
    JobSpec,
    ResultCache,
    execute_unit,
    figure_unit,
    figure_units,
    run_units,
)
from repro.exceptions import AlgorithmContractError
from repro.experiments.figures import all_figures
from repro.registry import get_family, get_measure, measure_names


class TestRegistration:
    def test_one_measure_per_figure(self):
        for fid in FIGURE_IDS:
            measure = get_measure(f"figure:{fid}")
            assert measure.figure_id == fid
            assert measure.grid_safe is False
            assert measure.uses_algorithm is False

    def test_figure_ids_match_the_builders(self):
        assert set(FIGURE_IDS) == set(all_figures())

    def test_figure_family_builds_artifacts(self):
        from repro.experiments.figures import FigureArtifact

        artifact = get_family("figure").make({"id": 4}, None)
        assert isinstance(artifact, FigureArtifact)
        assert artifact.figure_id == "figure-4"

    def test_figure_measures_not_grid_safe(self):
        assert not any(
            get_measure(name).grid_safe
            for name in measure_names() if name.startswith("figure:")
        )


class TestUnits:
    def test_figure_units_expand_all(self):
        units = figure_units()
        assert len(units) == len(FIGURE_IDS)
        assert [u.measure for u in units] == [
            f"figure:{fid}" for fid in FIGURE_IDS
        ]

    def test_figure_units_subset_and_unknown(self):
        assert [u.label for u in figure_units(["2", "7"])] == [
            "figure 2", "figure 7"
        ]
        with pytest.raises(KeyError):
            figure_units(["10"])

    def test_record_carries_claims_and_rendering(self):
        record = execute_unit(figure_unit("4"))
        artifact = all_figures()["4"]()
        assert record.extra["figure_id"] == "figure-4"
        assert record.extra["checks"] == list(artifact.checks)
        assert record.extra["rendering"] == artifact.rendering
        assert record.graph_family == "figure"

    def test_measure_rejects_wrong_family(self):
        unit = JobSpec(
            "figure", GraphSpec.make("cycle", n=8), measure="figure:1"
        )
        with pytest.raises(AlgorithmContractError):
            execute_unit(unit)

    def test_measure_rejects_mismatched_id(self):
        unit = JobSpec(
            "figure", GraphSpec.make("figure", id=2), measure="figure:3"
        )
        with pytest.raises(AlgorithmContractError):
            execute_unit(unit)


class TestEngineIntegration:
    def test_cached_rerun_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_units(figure_units(), cache=cache)
        assert first.computed == len(FIGURE_IDS)
        second = run_units(figure_units(), cache=cache)
        assert second.cache_hits == len(FIGURE_IDS)
        assert [r.canonical() for r in first.records] == [
            r.canonical() for r in second.records
        ]

    def test_parallel_figures_match_serial(self):
        serial = run_units(figure_units(["1", "2", "5"]), backend="inline")
        parallel = run_units(
            figure_units(["1", "2", "5"]), workers=2, backend="process"
        )
        assert serial.records == parallel.records
