"""Tests for cache eviction (``repro-eds cache gc``) and its parsers."""

from __future__ import annotations

import os

import pytest

from repro.cli import main
from repro.engine.cache import (
    ResultCache,
    parse_age,
    parse_size,
)


def _fill(cache: ResultCache, count: int, *, base_time: float) -> list[str]:
    """Write *count* records with mtimes base_time, base_time+10, …"""
    keys = []
    for i in range(count):
        key = f"{i:02x}" + "0" * 62
        cache.put(key, {"index": i, "payload": "x" * 100})
        stamp = base_time + 10 * i
        os.utime(cache.path_for(key), (stamp, stamp))
        keys.append(key)
    return keys


class TestParsers:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("2048", 2048),
            ("1K", 1024),
            ("1KiB", 1024),
            ("1.5MB", int(1.5 * 1024 ** 2)),
            ("2GiB", 2 * 1024 ** 3),
            (" 64 KB ", 64 * 1024),
        ],
    )
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("300", 300.0),
            ("90s", 90.0),
            ("5m", 300.0),
            ("12h", 12 * 3600.0),
            ("7d", 7 * 86400.0),
            ("2w", 14 * 86400.0),
        ],
    )
    def test_parse_age(self, text, expected):
        assert parse_age(text) == expected

    @pytest.mark.parametrize(
        "text", ["", "abc", "5x", "-3", "1.2.3K", "1e309", "inf", "nan"]
    )
    def test_bad_sizes_rejected(self, text):
        with pytest.raises(ValueError):
            parse_size(text)

    def test_bad_age_rejected(self):
        with pytest.raises(ValueError):
            parse_age("7y")


class TestGcPolicy:
    def test_gc_needs_a_bound(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).gc()

    def test_age_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill(cache, 5, base_time=1000.0)
        # now=1100: ages are 100, 90, 80, 70, 60 — evict older than 75s
        report = cache.gc(max_age=75, now=1100.0)
        assert report.removed == 3
        assert report.kept == 2
        assert cache.get(keys[0]) is None
        assert cache.get(keys[4]) is not None

    def test_size_eviction_drops_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill(cache, 4, base_time=1000.0)
        sizes = [cache.path_for(k).stat().st_size for k in keys]
        budget = sizes[2] + sizes[3]  # room for exactly the newest two
        report = cache.gc(max_bytes=budget, now=2000.0)
        assert report.removed == 2
        assert report.freed_bytes == sizes[0] + sizes[1]
        assert cache.get(keys[0]) is None and cache.get(keys[1]) is None
        assert cache.get(keys[2]) is not None
        assert report.kept_bytes <= budget

    def test_size_budget_already_met_is_a_no_op(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3, base_time=1000.0)
        report = cache.gc(max_bytes=10 ** 9, now=2000.0)
        assert report.removed == 0 and report.kept == 3

    def test_combined_age_then_size(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill(cache, 6, base_time=1000.0)
        size = cache.path_for(keys[0]).stat().st_size
        # age pass removes the two oldest; size pass trims down to two
        report = cache.gc(max_bytes=2 * size, max_age=35, now=1060.0)
        assert report.removed == 4
        assert report.kept == 2
        assert cache.get(keys[5]) is not None

    def test_zero_budget_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3, base_time=1000.0)
        report = cache.gc(max_bytes=0, now=2000.0)
        assert report.removed == 3 and report.kept == 0
        assert len(cache) == 0

    def test_gc_report_format(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 2, base_time=1000.0)
        text = cache.gc(max_age=0, now=9999.0).format()
        assert "evicted 2 record(s)" in text
        assert "kept 0 record(s)" in text


class TestGcCommand:
    def test_cli_gc_by_size(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", "--degrees", "2", "--sizes", "12",
                     "--seeds", "1", "--quiet", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--max-size", "0"]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out and "kept 0 record(s)" in out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries:         0" in capsys.readouterr().out

    def test_cli_gc_by_age_keeps_fresh_records(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", "--degrees", "2", "--sizes", "12",
                     "--seeds", "1", "--quiet", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--max-age", "1d"]) == 0
        out = capsys.readouterr().out
        assert "evicted 0 record(s)" in out

    def test_cli_gc_requires_a_bound(self, capsys, tmp_path):
        code = main(["cache", "gc", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "--max-size and/or --max-age" in capsys.readouterr().err

    def test_cli_gc_rejects_bad_size(self, capsys, tmp_path):
        code = main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-size", "lots"])
        assert code == 2
        assert "cannot parse size" in capsys.readouterr().err
