"""Tests for the synchronous simulator (repro.runtime)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    InconsistentOutputError,
    RoundLimitExceeded,
    SimulationError,
)
from repro.portgraph import PortGraphBuilder, from_networkx, random_lift
from repro.runtime import (
    NodeProgram,
    check_consistency,
    decode_edge_set,
    edge_set_to_outputs,
    run_anonymous,
    run_identified,
)

from tests.conftest import port_graphs


class HaltImmediately(NodeProgram):
    """Outputs the empty set in round 0 without communicating."""

    def send(self, rnd):
        return {}

    def receive(self, rnd, inbox):
        self.halt()


class OutputAllPorts(NodeProgram):
    """Selects every incident edge."""

    def send(self, rnd):
        return {}

    def receive(self, rnd, inbox):
        self.halt(set(range(1, self.degree + 1)))


class EchoOnce(NodeProgram):
    """Round 0: send own degree everywhere; halt with ports whose
    neighbour has strictly larger degree."""

    def send(self, rnd):
        return {i: self.degree for i in range(1, self.degree + 1)}

    def receive(self, rnd, inbox):
        bigger = {i for i, d in inbox.items() if d > self.degree}
        # Not internally consistent in general; used only for plumbing
        # tests that bypass edge-set decoding.
        self._bigger = bigger
        self.halt(bigger)


class NeverHalts(NodeProgram):
    def send(self, rnd):
        return {}

    def receive(self, rnd, inbox):
        pass


class LearnNeighbourPort(NodeProgram):
    """Round 0: send my port number over each port; round 1: halt with the
    set of ports whose received peer port number equals 1."""

    def send(self, rnd):
        if rnd == 0:
            return {i: i for i in range(1, self.degree + 1)}
        return {}

    def receive(self, rnd, inbox):
        if rnd == 0:
            chosen = {i for i, j in inbox.items() if j == 1 or i == 1}
            self.halt(chosen)


class TestSchedulerBasics:
    def test_all_halt_round_zero(self, triangle):
        result = run_anonymous(triangle, HaltImmediately)
        assert result.rounds == 1
        assert all(result.outputs[v] == frozenset() for v in triangle.nodes)
        assert result.edge_set() == frozenset()

    def test_output_all_ports_selects_all_edges(self, triangle):
        result = run_anonymous(triangle, OutputAllPorts)
        assert result.edge_set() == frozenset(triangle.edges)

    def test_round_limit(self, triangle):
        with pytest.raises(RoundLimitExceeded):
            run_anonymous(triangle, NeverHalts, max_rounds=10)

    def test_messages_routed_through_involution(self):
        # u:1 -- v:2,  v:1 -- w:1.  LearnNeighbourPort marks edges touching
        # port 1 on either side, i.e. both edges here.
        b = PortGraphBuilder()
        b.add_nodes({"u": 1, "v": 2, "w": 1})
        b.connect("u", 1, "v", 2)
        b.connect("v", 1, "w", 1)
        g = b.build()
        result = run_anonymous(g, LearnNeighbourPort)
        assert result.outputs["u"] == {1}
        assert result.outputs["v"] == {1, 2}
        assert result.outputs["w"] == {1}
        assert len(result.edge_set()) == 2

    def test_degree_zero_nodes_halt_immediately(self):
        g = from_networkx(nx.empty_graph(3))
        result = run_anonymous(g, LearnNeighbourPort)
        assert result.rounds == 0
        assert all(result.outputs[v] == frozenset() for v in g.nodes)

    def test_invalid_send_port_raises(self, triangle):
        class BadSender(NodeProgram):
            def send(self, rnd):
                return {99: "x"}

            def receive(self, rnd, inbox):
                self.halt()

        with pytest.raises(SimulationError):
            run_anonymous(triangle, BadSender)

    def test_invalid_halt_port_raises(self, triangle):
        class BadHalter(NodeProgram):
            def send(self, rnd):
                return {}

            def receive(self, rnd, inbox):
                self.halt({99})

        with pytest.raises(SimulationError):
            run_anonymous(triangle, BadHalter)

    def test_trace_recording(self, triangle):
        result = run_anonymous(triangle, LearnNeighbourPort, record_trace=True)
        assert result.trace is not None
        assert len(result.trace) == result.rounds
        # each of 3 nodes sends on 2 ports in round 0
        assert result.trace.rounds[0].message_count == 6
        assert result.trace.total_messages == 6
        assert "rounds" in result.trace.summary()

    def test_loops_deliver_to_self(self, multigraph_m):
        class LoopEcho(NodeProgram):
            def send(self, rnd):
                return {i: ("ping", i) for i in range(1, self.degree + 1)}

            def receive(self, rnd, inbox):
                self.received = dict(inbox)
                self.halt()

        result = run_anonymous(multigraph_m, LoopEcho, record_trace=True)
        # every port receives exactly one message (involution is total)
        for msg in result.trace.rounds[0].messages:
            assert msg.payload[0] == "ping"
        assert result.trace.rounds[0].message_count == 7  # 3 + 4 ports


class TestIdentifiedRunner:
    def test_ids_delivered(self, triangle):
        class OutputId(NodeProgram):
            def __init__(self, degree, uid):
                super().__init__(degree)
                self.uid = uid

            def send(self, rnd):
                return {}

            def receive(self, rnd, inbox):
                self.halt()

        result = run_identified(triangle, OutputId)
        assert result.rounds == 1

    def test_duplicate_ids_rejected(self, triangle):
        with pytest.raises(SimulationError):
            run_identified(
                triangle,
                lambda d, uid: HaltImmediately(d),
                ids={v: 0 for v in triangle.nodes},
            )


class TestOutputDecoding:
    def test_consistency_violation_detected(self, path_graph_p2):
        with pytest.raises(InconsistentOutputError):
            check_consistency(
                path_graph_p2,
                {"u": frozenset({1}), "v": frozenset()},
            )

    def test_missing_node_detected(self, path_graph_p2):
        with pytest.raises(InconsistentOutputError):
            check_consistency(path_graph_p2, {"u": frozenset({1})})

    def test_invalid_port_detected(self, path_graph_p2):
        with pytest.raises(InconsistentOutputError):
            check_consistency(
                path_graph_p2,
                {"u": frozenset({7}), "v": frozenset()},
            )

    def test_round_trip_edges_outputs(self, triangle):
        edges = frozenset(triangle.edges)
        outputs = edge_set_to_outputs(triangle, edges)
        assert decode_edge_set(triangle, outputs) == edges

    def test_empty_output_is_consistent(self, triangle):
        outputs = {v: frozenset() for v in triangle.nodes}
        assert decode_edge_set(triangle, outputs) == frozenset()


class TestCoveringInvariance:
    """Paper §2.3: a deterministic algorithm cannot distinguish a graph
    from its covering graph — node v of the lift outputs X(f(v))."""

    @settings(max_examples=25, deadline=None)
    @given(
        g=port_graphs(max_nodes=6),
        fold=st.integers(2, 3),
        seed=st.integers(0, 10**6),
    )
    def test_learn_neighbour_port_lifts(self, g, fold, seed):
        lift, f = random_lift(g, fold, seed=seed)
        base_result = run_anonymous(g, LearnNeighbourPort)
        lift_result = run_anonymous(lift, LearnNeighbourPort)
        for v in lift.nodes:
            assert lift_result.outputs[v] == base_result.outputs[f[v]]

    def test_multigraph_base(self, multigraph_m):
        lift, f = random_lift(multigraph_m, 3, seed=11)
        base_result = run_anonymous(multigraph_m, LearnNeighbourPort)
        lift_result = run_anonymous(lift, LearnNeighbourPort)
        for v in lift.nodes:
            assert lift_result.outputs[v] == base_result.outputs[f[v]]


class HaltByDegreeThenChatter(NodeProgram):
    """Degree-1 nodes halt after round 0; everyone else keeps sending.

    Exercises the halted-recipient path: once the leaves halt, their
    still-running neighbours keep addressing messages to them.
    """

    def send(self, rnd):
        return {i: "ping" for i in range(1, self.degree + 1)}

    def receive(self, rnd, inbox):
        if self.degree == 1:
            self.halt()
        elif rnd >= 2:
            self.halt()


class TestStrictDelivery:
    def _star(self):
        return from_networkx(nx.star_graph(3))

    def test_default_silently_drops(self):
        result = run_anonymous(self._star(), HaltByDegreeThenChatter)
        assert result.rounds == 3

    def test_strict_delivery_raises(self):
        with pytest.raises(SimulationError, match="halted node"):
            run_anonymous(
                self._star(), HaltByDegreeThenChatter, strict_delivery=True
            )

    def test_strict_delivery_passes_when_all_halt_together(self, triangle):
        result = run_anonymous(
            triangle, HaltImmediately, strict_delivery=True
        )
        assert result.rounds == 1

    def test_identified_runner_supports_strict_delivery(self, triangle):
        class OutputNothing(NodeProgram):
            def __init__(self, degree, uid):
                super().__init__(degree)

            def send(self, rnd):
                return {}

            def receive(self, rnd, inbox):
                self.halt()

        result = run_identified(
            triangle, OutputNothing, strict_delivery=True
        )
        assert result.rounds == 1

    def test_paper_algorithms_pass_strict_delivery(self):
        from repro.algorithms.regular_odd import RegularOddEDS
        from repro.generators.regular import random_regular

        graph = random_regular(3, 12, seed=0)
        result = run_anonymous(graph, RegularOddEDS, strict_delivery=True)
        assert result.edge_set()
