"""Tests for text rendering and message profiling."""

from __future__ import annotations

import networkx as nx

from repro.algorithms import PortOneEDS, RegularOddEDS
from repro.analysis.messages import profile_messages
from repro.generators import random_regular
from repro.portgraph import from_networkx
from repro.portgraph.render import (
    render_edge_set,
    render_graph,
    render_outputs,
)
from repro.runtime import run_anonymous


class TestRenderGraph:
    def test_render_path(self):
        g = from_networkx(nx.path_graph(3))
        text = render_graph(g, title="P3")
        assert "P3" in text
        assert "(deg 2)" in text
        assert "1->" in text

    def test_render_empty(self):
        from repro.portgraph import PortGraphBuilder

        g = PortGraphBuilder().build()
        assert "(empty graph)" in render_graph(g)

    def test_render_loops(self, multigraph_m):
        text = render_graph(multigraph_m)
        assert "s:3" in text  # fixed point rendered as its own target

    def test_render_deterministic(self):
        g = from_networkx(nx.cycle_graph(5))
        assert render_graph(g) == render_graph(g)


class TestRenderEdgesAndOutputs:
    def test_edge_set(self):
        g = from_networkx(nx.path_graph(3))
        text = render_edge_set(g.edges, title="edges:")
        assert text.count("--") == 2

    def test_empty_edge_set(self):
        assert "(empty)" in render_edge_set([])

    def test_directed_loop_rendering(self, multigraph_m):
        loops = [e for e in multigraph_m.edges if e.is_directed_loop]
        assert "loop" in render_edge_set(loops)

    def test_outputs(self):
        g = from_networkx(nx.path_graph(3))
        result = run_anonymous(g, PortOneEDS)
        text = render_outputs(g, result.outputs, title="X:")
        assert "X(" in text


class TestMessageProfile:
    def test_port_one_message_count(self):
        """PortOne sends exactly one message per port, in one round."""
        g = random_regular(4, 10, seed=1)
        profile = profile_messages(g, PortOneEDS)
        assert profile.rounds == 1
        assert profile.total_messages == 4 * 10  # sum of degrees
        assert profile.max_round_messages == 40
        assert profile.mean_round_messages == 40

    def test_regular_odd_profile(self):
        g = random_regular(3, 8, seed=2)
        profile = profile_messages(g, RegularOddEDS)
        assert profile.rounds == RegularOddEDS.total_rounds(3)
        # setup rounds broadcast on every port: 2 rounds of 24 messages
        assert profile.messages_per_round[0] == 24
        assert profile.messages_per_round[1] == 24
        # pair steps only involve matched ports: strictly less traffic
        assert all(c <= 24 for c in profile.messages_per_round[2:])
        assert profile.total_messages < profile.rounds * 24

    def test_empty_graph_profile(self):
        g = from_networkx(nx.empty_graph(3))
        profile = profile_messages(g, PortOneEDS)
        assert profile.total_messages == 0
        assert profile.mean_round_messages == 0.0
