"""Tests for degree refinement, minimal quotients, and the executable
lower-bound calculator (repro.portgraph.refinement)."""

from __future__ import annotations

from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import PortOneEDS
from repro.exceptions import ReproError
from repro.lowerbounds import build_even_lower_bound, build_odd_lower_bound
from repro.portgraph import from_networkx, random_lift
from repro.portgraph.numbering import factor_pairing_numbering
from repro.portgraph.refinement import (
    best_anonymous_eds_size,
    edge_orbits,
    minimal_quotient,
    stable_partition,
)
from repro.runtime import run_anonymous

from tests.conftest import port_graphs


class TestStablePartition:
    def test_symmetric_cycle_collapses_to_point(self):
        g = from_networkx(nx.cycle_graph(8), factor_pairing_numbering)
        partition = stable_partition(g)
        assert len(set(partition.values())) == 1
        quotient, _ = minimal_quotient(g)
        assert quotient.num_nodes == 1

    def test_asymmetric_numbering_often_splits(self):
        g = from_networkx(nx.path_graph(4))
        partition = stable_partition(g)
        # end nodes (degree 1) cannot share a block with middle nodes
        assert partition[0] != partition[1]

    def test_partition_is_connection_consistent(self):
        # minimal_quotient raises if not; smoke over several graphs
        for graph in (nx.petersen_graph(), nx.path_graph(6)):
            g = from_networkx(graph)
            quotient, f = minimal_quotient(g)
            assert set(f) == set(g.nodes)

    @settings(max_examples=30, deadline=None)
    @given(g=port_graphs(max_nodes=8))
    def test_refinement_classes_respect_outputs(self, g):
        """Nodes in one refinement block produce identical outputs — the
        §2.3 invariance, reproved through refinement."""
        partition = stable_partition(g)
        result = run_anonymous(g, PortOneEDS)
        by_block: dict[int, set] = {}
        for v in g.nodes:
            by_block.setdefault(partition[v], set()).add(result.outputs[v])
        assert all(len(outputs) == 1 for outputs in by_block.values())

    @settings(max_examples=20, deadline=None)
    @given(g=port_graphs(max_nodes=6), fold=st.integers(2, 3),
           seed=st.integers(0, 10**6))
    def test_lift_quotient_at_least_as_coarse(self, g, fold, seed):
        """A lift's minimal quotient is no larger than the base's (the
        lift collapses at least as much)."""
        lift, _ = random_lift(g, fold, seed=seed)
        base_q, _ = minimal_quotient(g)
        lift_q, _ = minimal_quotient(lift)
        assert lift_q.num_nodes <= base_q.num_nodes * 1  # == base classes
        # in fact the lift's refinement factors through the base:
        assert lift_q.num_nodes <= g.num_nodes


class TestMinimalQuotientOfConstructions:
    """The refinement must *rediscover* the papers' partitions."""

    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_even_construction_collapses_to_single_node(self, d):
        inst = build_even_lower_bound(d)
        quotient, _ = minimal_quotient(inst.graph)
        assert quotient.num_nodes == 1
        # same wiring as the paper's one-node multigraph (§3.3), up to
        # the node's name: port 2i-1 pairs with port 2i
        assert {frozenset((e.i, e.j)) for e in quotient.edges} == {
            frozenset((2 * i - 1, 2 * i)) for i in range(1, d // 2 + 1)
        }

    @pytest.mark.parametrize("d", [3, 5])
    def test_odd_construction_collapses_to_hub_quotient(self, d):
        inst = build_odd_lower_bound(d)
        quotient, f = minimal_quotient(inst.graph)
        # same number of classes as the paper's partition (d + 1), and
        # the classes coincide with the paper's fibres
        assert quotient.num_nodes == d + 1
        paper_fibres = {}
        for v in inst.graph.nodes:
            paper_fibres.setdefault(inst.covering_map[v], set()).add(v)
        our_fibres = {}
        for v in inst.graph.nodes:
            our_fibres.setdefault(f[v], set()).add(v)
        assert sorted(map(sorted, paper_fibres.values())) == sorted(
            map(sorted, our_fibres.values())
        )


class TestEdgeOrbits:
    def test_cycle_single_orbit(self):
        g = from_networkx(nx.cycle_graph(6), factor_pairing_numbering)
        orbits = edge_orbits(g)
        assert len(orbits) == 1
        assert len(orbits[0]) == 6

    def test_orbits_partition_edges(self):
        inst = build_even_lower_bound(4)
        orbits = edge_orbits(inst.graph)
        seen = set()
        for orbit in orbits:
            assert not (orbit & seen)
            seen |= orbit
        assert seen == set(inst.graph.edges)

    @settings(max_examples=25, deadline=None)
    @given(g=port_graphs(max_nodes=8))
    def test_algorithm_outputs_are_orbit_unions(self, g):
        """Any deterministic anonymous output is a union of edge orbits."""
        result = run_anonymous(g, PortOneEDS)
        selected = result.edge_set()
        for orbit in edge_orbits(g):
            intersection = orbit & selected
            assert intersection == orbit or not intersection


class TestExecutableLowerBound:
    """Theorems 1-2, recomputed from first principles: the best possible
    anonymous solution divided by the true optimum equals the Table 1
    ratio — for *any* algorithm, not just the ones we implemented."""

    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_even_bound_recomputed(self, d):
        inst = build_even_lower_bound(d)
        best = best_anonymous_eds_size(inst.graph)
        assert Fraction(best, inst.optimum_size) == inst.forced_ratio

    @pytest.mark.parametrize("d", [3, 5])
    def test_odd_bound_recomputed(self, d):
        inst = build_odd_lower_bound(d)
        best = best_anonymous_eds_size(inst.graph)
        assert Fraction(best, inst.optimum_size) == inst.forced_ratio

    def test_orbit_guard(self):
        g = from_networkx(nx.gnp_random_graph(12, 0.5, seed=1))
        with pytest.raises(ReproError):
            best_anonymous_eds_size(g, max_orbits=2)

    def test_symmetric_cycle_forced_to_everything(self):
        g = from_networkx(nx.cycle_graph(9), factor_pairing_numbering)
        assert best_anonymous_eds_size(g) == 9  # all edges, one orbit
