"""Moderate-scale integration runs: locality at sizes where it matters.

These verify feasibility and the locality claims on graphs far larger
than the exact solver can handle, using the poly-time optimum lower
bounds for ratio sanity.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms import BoundedDegreeEDS, PortOneEDS, RegularOddEDS
from repro.eds import eds_lower_bound, is_edge_dominating_set, regular_ratio
from repro.generators import grid, random_regular
from repro.runtime import run_anonymous


class TestScale:
    def test_port_one_on_500_nodes(self):
        graph = random_regular(6, 500, seed=1)
        result = run_anonymous(graph, PortOneEDS)
        solution = result.edge_set()
        assert result.rounds == 1
        assert is_edge_dominating_set(graph, solution)
        # the Theorem 3 bound, evaluated against a poly-time lower bound
        assert Fraction(len(solution), eds_lower_bound(graph)) <= (
            regular_ratio(6) * 2  # lower bound can be off by <= 2x (ν/2)
        )

    def test_regular_odd_on_200_nodes(self):
        graph = random_regular(3, 200, seed=2)
        result = run_anonymous(graph, RegularOddEDS)
        solution = result.edge_set()
        assert result.rounds == RegularOddEDS.total_rounds(3)
        assert is_edge_dominating_set(graph, solution)
        # structural bound from Theorem 4's proof: |D| <= d|V|/(d+1)
        assert 4 * len(solution) <= 3 * 200

    def test_bounded_on_large_grid(self):
        field = grid(12, 12, seed=3)
        result = run_anonymous(field, BoundedDegreeEDS(4))
        solution = result.edge_set()
        assert is_edge_dominating_set(field, solution)
        assert result.rounds == BoundedDegreeEDS(4).total_rounds()

    @pytest.mark.parametrize("n", (60, 120, 240))
    def test_rounds_flat_across_sizes(self, n):
        graph = random_regular(5, n, seed=n)
        result = run_anonymous(graph, RegularOddEDS)
        assert result.rounds == 2 + 2 * 25

    def test_solution_density_stable(self):
        """|D|/n stays in a narrow band as n grows (local decisions)."""
        densities = []
        for n in (50, 100, 200):
            graph = random_regular(3, n, seed=n)
            result = run_anonymous(graph, RegularOddEDS)
            densities.append(len(result.edge_set()) / n)
        assert max(densities) - min(densities) < 0.1
