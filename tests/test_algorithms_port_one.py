"""Tests for the Theorem 3 algorithm (PortOneEDS)."""

from __future__ import annotations

from fractions import Fraction

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import PortOneEDS
from repro.eds import is_edge_dominating_set, minimum_eds_size
from repro.matching import is_edge_cover
from repro.portgraph import from_networkx, random_numbering
from repro.runtime import run_anonymous

from tests.conftest import port_graphs, regular_nx_graphs


class TestBasics:
    def test_single_edge(self, path_graph_p2):
        result = run_anonymous(path_graph_p2, PortOneEDS)
        assert result.rounds == 1
        assert result.edge_set() == frozenset(path_graph_p2.edges)

    def test_output_is_edges_touching_port_one(self, triangle):
        result = run_anonymous(triangle, PortOneEDS)
        expected = {
            e for e in triangle.edges if 1 in (e.i, e.j)
        }
        assert result.edge_set() == frozenset(expected)

    def test_constant_round_count(self):
        for n in (4, 8, 16, 32):
            g = from_networkx(nx.cycle_graph(n))
            assert run_anonymous(g, PortOneEDS).rounds == 1

    def test_covers_every_node(self):
        g = from_networkx(nx.random_regular_graph(4, 10, seed=0))
        result = run_anonymous(g, PortOneEDS)
        assert is_edge_cover(g, result.edge_set())


@settings(max_examples=40, deadline=None)
@given(g=port_graphs(max_nodes=10))
def test_feasible_on_every_graph(g):
    """On any graph (not only regular), the output dominates all edges:
    every non-isolated node selects its port-1 edge, so the output covers
    all non-isolated nodes."""
    result = run_anonymous(g, PortOneEDS)
    d = result.edge_set()
    assert is_edge_dominating_set(g, d)


@settings(max_examples=25, deadline=None)
@given(graph=regular_nx_graphs(degrees=(2, 3, 4), max_nodes=10),
       seed=st.integers(0, 10**6))
def test_ratio_bound_on_regular_graphs(graph, seed):
    """|D| <= (4 - 2/d) |D*| on every d-regular graph.

    The Theorem 3 proof gives the bound for every d (even or odd):
    |D| <= |V| = 2|E|/d and |E| <= (2d - 1)|D*|.
    """
    g = from_networkx(graph, random_numbering(seed))
    d = g.require_regular()
    result = run_anonymous(g, PortOneEDS)
    output_size = len(result.edge_set())
    optimum = minimum_eds_size(g)
    assert Fraction(output_size, optimum) <= Fraction(4) - Fraction(2, d)


@settings(max_examples=25, deadline=None)
@given(graph=regular_nx_graphs(degrees=(2, 4), max_nodes=12),
       seed=st.integers(0, 10**6))
def test_size_at_most_n(graph, seed):
    """Structural bound from the proof: |D| <= |V|."""
    g = from_networkx(graph, random_numbering(seed))
    result = run_anonymous(g, PortOneEDS)
    assert len(result.edge_set()) <= g.num_nodes
