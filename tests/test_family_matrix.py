"""Algorithm × graph-family matrix: feasibility and guarantees on every
generator family the package ships.

Each cell runs an applicable algorithm on a family instance and checks
feasibility plus the Table 1 guarantee against the exact optimum (small
instances) — broad integration coverage complementing the random and
adversarial tests.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms import BoundedDegreeEDS, PortOneEDS, RegularOddEDS
from repro.eds import (
    bounded_degree_ratio,
    is_edge_dominating_set,
    minimum_eds_size,
    regular_ratio,
)
from repro.generators import (
    caterpillar,
    circulant,
    complete,
    complete_bipartite,
    crown,
    cycle,
    grid,
    hypercube,
    path,
    petersen,
    random_tree,
    star,
    torus,
)
from repro.runtime import run_anonymous

REGULAR_FAMILIES = [
    ("cycle-9", lambda: cycle(9), 2),
    ("complete-5", lambda: complete(5), 4),
    ("complete-6", lambda: complete(6), 5),
    ("bipartite-3x3", lambda: complete_bipartite(3, 3), 3),
    ("circulant-8", lambda: circulant(8, (1, 2)), 4),
    ("hypercube-3", lambda: hypercube(3), 3),
    ("torus-3x3", lambda: torus(3, 3), 4),
    ("petersen", lambda: petersen(), 3),
    ("crown-4", lambda: crown(4), 3),
]

BOUNDED_FAMILIES = [
    ("path-8", lambda: path(8), 2),
    ("grid-3x4", lambda: grid(3, 4), 4),
    ("tree-10", lambda: random_tree(10, seed=4), None),
    ("star-6", lambda: star(6), 6),
    ("caterpillar", lambda: caterpillar(4, 2), 4),
]


class TestPortOneOnRegularFamilies:
    @pytest.mark.parametrize("name,make,d", REGULAR_FAMILIES)
    def test_feasible_and_within_bound(self, name, make, d):
        g = make()
        assert g.regularity() == d
        result = run_anonymous(g, PortOneEDS)
        solution = result.edge_set()
        assert is_edge_dominating_set(g, solution), name
        optimum = minimum_eds_size(g)
        assert Fraction(len(solution), optimum) <= Fraction(4) - Fraction(
            2, d
        ), name


class TestRegularOddOnOddFamilies:
    @pytest.mark.parametrize(
        "name,make,d",
        [f for f in REGULAR_FAMILIES if f[2] % 2 == 1],
    )
    def test_feasible_and_within_bound(self, name, make, d):
        g = make()
        result = run_anonymous(g, RegularOddEDS)
        solution = result.edge_set()
        assert is_edge_dominating_set(g, solution), name
        optimum = minimum_eds_size(g)
        assert Fraction(len(solution), optimum) <= regular_ratio(d), name


class TestBoundedDegreeEverywhere:
    @pytest.mark.parametrize(
        "name,make,delta", REGULAR_FAMILIES + BOUNDED_FAMILIES
    )
    def test_feasible_and_within_bound(self, name, make, delta):
        g = make()
        max_degree = delta if delta is not None else g.max_degree
        result = run_anonymous(g, BoundedDegreeEDS(max_degree))
        solution = result.edge_set()
        assert is_edge_dominating_set(g, solution), name
        optimum = minimum_eds_size(g)
        if optimum:
            assert Fraction(len(solution), optimum) <= bounded_degree_ratio(
                max(max_degree, 2)
            ), name

    def test_isolated_plus_edges(self):
        """Mixed graph: isolated nodes and a matching component."""
        import networkx as nx
        from repro.portgraph import from_networkx

        base = nx.Graph([(0, 1)])
        base.add_nodes_from([7, 8])
        g = from_networkx(base)
        result = run_anonymous(g, BoundedDegreeEDS(1))
        assert result.edge_set() == frozenset(g.edges)
