"""Tests for PortGraphBuilder."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphValidationError, PortNumberingError
from repro.portgraph import PortGraphBuilder


class TestDeclaration:
    def test_redeclare_same_degree_is_noop(self):
        b = PortGraphBuilder()
        b.add_node("u", 2)
        b.add_node("u", 2)

    def test_redeclare_different_degree_fails(self):
        b = PortGraphBuilder()
        b.add_node("u", 2)
        with pytest.raises(GraphValidationError):
            b.add_node("u", 3)

    def test_negative_degree_fails(self):
        b = PortGraphBuilder()
        with pytest.raises(PortNumberingError):
            b.add_node("u", -1)

    def test_add_nodes_bulk(self):
        b = PortGraphBuilder()
        b.add_nodes({"u": 1, "v": 1})
        b.connect("u", 1, "v", 1)
        assert b.build().num_nodes == 2


class TestConnecting:
    def test_unknown_node_fails(self):
        b = PortGraphBuilder()
        b.add_node("u", 1)
        with pytest.raises(GraphValidationError):
            b.connect("u", 1, "ghost", 1)

    def test_port_out_of_range_fails(self):
        b = PortGraphBuilder()
        b.add_nodes({"u": 1, "v": 1})
        with pytest.raises(PortNumberingError):
            b.connect("u", 2, "v", 1)
        with pytest.raises(PortNumberingError):
            b.connect("u", 0, "v", 1)

    def test_double_connect_fails(self):
        b = PortGraphBuilder()
        b.add_nodes({"u": 1, "v": 1, "w": 1})
        b.connect("u", 1, "v", 1)
        with pytest.raises(GraphValidationError):
            b.connect("u", 1, "w", 1)

    def test_fixed_point(self):
        b = PortGraphBuilder()
        b.add_node("v", 1)
        b.connect_fixed_point("v", 1)
        g = b.build()
        assert g.connection("v", 1) == ("v", 1)
        assert g.edges[0].is_directed_loop

    def test_undirected_loop(self):
        b = PortGraphBuilder()
        b.add_node("v", 2)
        b.connect("v", 1, "v", 2)
        g = b.build()
        assert g.num_edges == 1
        assert g.edges[0].is_loop
        assert not g.edges[0].is_directed_loop


class TestCompletion:
    def test_incomplete_build_fails(self):
        b = PortGraphBuilder()
        b.add_nodes({"u": 2, "v": 1})
        b.connect("u", 1, "v", 1)
        assert not b.is_complete()
        assert b.unconnected_ports() == [("u", 2)]
        with pytest.raises(GraphValidationError):
            b.build()

    def test_complete_build(self):
        b = PortGraphBuilder()
        b.add_nodes({"u": 2, "v": 2})
        b.connect("u", 1, "v", 2)
        b.connect("u", 2, "v", 1)
        assert b.is_complete()
        g = b.build()
        assert g.num_edges == 2

    def test_empty_builder_builds_empty_graph(self):
        g = PortGraphBuilder().build()
        assert g.num_nodes == 0
